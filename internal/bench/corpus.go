// Package bench hosts the benchmark corpus modelled on the programs the
// paper's introduction classifies (Peterson, Dekker, Lamport, barrier,
// Chase-Lev deque, RCU, Phoenix-style data-parallel kernels, plus the
// standard weak-memory litmus tests), and the experiment harness that
// regenerates the paper's tables and figures.
package bench

import (
	"paramra/internal/lang"
)

// Verdict is the expected outcome of parameterized safety verification.
type Verdict int

// Verdicts.
const (
	// Safe: no assert violation in any instance.
	Safe Verdict = iota + 1
	// Unsafe: some instance reaches an assert violation.
	Unsafe
)

func (v Verdict) String() string {
	if v == Unsafe {
		return "UNSAFE"
	}
	return "SAFE"
}

// Entry is one corpus benchmark.
type Entry struct {
	Name string
	// Origin cites where the benchmark family comes from.
	Origin string
	// Class is the paper-notation system class the entry belongs to.
	Class string
	// Want is the expected parameterized verdict (violations are often the
	// *intended* observable behaviour, e.g. litmus weak outcomes).
	Want Verdict
	// MinEnv is the smallest number of env threads exhibiting the
	// violation (0 when none are needed, -1 for safe entries).
	MinEnv int
	// Src is the system in concrete syntax.
	Src string
}

// System parses the entry.
func (e Entry) System() *lang.System { return lang.MustParseSystem(e.Src) }

// Corpus returns the full benchmark corpus.
func Corpus() []Entry {
	return []Entry{
		{
			Name:   "prodcons-fig1",
			Origin: "paper Figure 1",
			Class:  "env(nocas) || dis_1(acyc)",
			Want:   Unsafe,
			MinEnv: 1,
			Src: `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`,
		},
		{
			Name:   "mp-litmus",
			Origin: "classic message-passing litmus",
			Class:  "env(nocas, acyc) || dis_1(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`,
		},
		{
			Name:   "sb-litmus",
			Origin: "store-buffering litmus (weak outcome allowed under RA)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Unsafe,
			MinEnv: 0,
			Src: `
system sb { vars x y a; domain 2; env idle; dis t1; dis t2 }
thread idle { skip }
thread t1 { regs r1; store x 1; r1 = load y; assume r1 == 0; store a 1 }
thread t2 { regs r2 r3; store y 1; r2 = load x; assume r2 == 0; r3 = load a; assume r3 == 1; assert false }
`,
		},
		{
			Name:   "lb-litmus",
			Origin: "load-buffering litmus (cycle forbidden under RA)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
system lb { vars x y; domain 2; env idle; dis t1; dis t2 }
thread idle { skip }
thread t1 { regs r1; r1 = load y; assume r1 == 1; store x 1; assert false }
thread t2 { regs r2; r2 = load x; assume r2 == 1; store y 1 }
`,
		},
		{
			Name:   "corr2-coherence",
			Origin: "per-location coherence litmus",
			Class:  "env(nocas, acyc) || dis_1..4(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
system corr2 { vars x f; domain 3; env idle; dis w1; dis w2; dis t3; dis t4 }
thread idle { skip }
thread w1 { store x 1 }
thread w2 { store x 2 }
thread t3 { regs a b; a = load x; assume a == 1; b = load x; assume b == 2; store f 1 }
thread t4 { regs c d r; c = load x; assume c == 2; d = load x; assume d == 1; r = load f; assume r == 1; assert false }
`,
		},
		{
			Name:   "peterson-ra",
			Origin: "Lahav & Margalit [34]: Peterson without fences (broken under RA)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Unsafe,
			MinEnv: 0,
			Src: `
system peterson { vars f0 f1 turn cs0; domain 2; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 {
  regs a b
  store f0 1
  store turn 1
  a = load f1
  b = load turn
  assume a == 0 || b == 0
  store cs0 1           # critical section
}
thread t1 {
  regs a b c
  store f1 1
  store turn 0
  a = load f0
  b = load turn
  assume a == 0 || b == 1
  c = load cs0          # in critical section: check overlap
  assume c == 1
  assert false
}
`,
		},
		{
			Name:   "peterson-ra-rmwfence",
			Origin: "Peterson with pseudo-fences (RMW on a dummy variable) — still broken: the turn store can be placed modification-order-early, a known gap between RMW fences and SC accesses",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Unsafe,
			MinEnv: 0,
			Src: `
system petersonf { vars f0 f1 turn cs0 fence; domain 2; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 {
  regs a b
  store f0 1
  store turn 1
  cas fence 0 0         # SC fence: RMW on a dedicated variable
  a = load f1
  b = load turn
  assume a == 0 || b == 0
  store cs0 1
}
thread t1 {
  regs a b c
  store f1 1
  store turn 0
  cas fence 0 0
  a = load f0
  b = load turn
  assume a == 0 || b == 1
  c = load cs0
  assume c == 1
  assert false
}
`,
		},
		{
			Name:   "dekker-ra",
			Origin: "Norris model-checker benchmarks [37]: Dekker core (broken under RA)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Unsafe,
			MinEnv: 0,
			Src: `
system dekker { vars f0 f1 cs0; domain 2; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 {
  regs a
  store f0 1
  a = load f1; assume a == 0
  store cs0 1
}
thread t1 {
  regs a c
  store f1 1
  a = load f0; assume a == 0
  c = load cs0; assume c == 1
  assert false
}
`,
		},
		{
			Name:   "dekker-fences",
			Origin: "Norris model-checker benchmarks [37]: Dekker with fences",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
system dekkerf { vars f0 f1 cs0 fence; domain 2; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 {
  regs a
  store f0 1
  cas fence 0 0
  a = load f1; assume a == 0
  store cs0 1
}
thread t1 {
  regs a c
  store f1 1
  cas fence 0 0
  a = load f0; assume a == 0
  c = load cs0; assume c == 1
  assert false
}
`,
		},
		{
			Name:   "lamport-2-ra",
			Origin: "Lahav & Margalit [34]: Lamport's fast mutex, 2 threads, no fences",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Unsafe,
			MinEnv: 0,
			Src: `
system lamport { vars x y cs0; domain 3; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 {
  regs b
  store x 1
  b = load y; assume b == 0
  store y 1
  b = load x; assume b == 1
  store cs0 1
}
thread t1 {
  regs b c
  store x 2
  b = load y; assume b == 0
  store y 2
  b = load x; assume b == 2
  c = load cs0; assume c == 1
  assert false
}
`,
		},
		{
			Name:   "spinlock-cas",
			Origin: "CAS spinlock (one acquisition each, mutual exclusion)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
system spin { vars l cs0; domain 2; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 { cas l 0 1; store cs0 1 }
thread t1 {
  regs c
  cas l 0 1
  c = load cs0; assume c == 1
  assert false
}
`,
		},
		{
			Name:   "barrier",
			Origin: "Norris model-checker benchmarks [37]: barrier with wait loop",
			Class:  "env(nocas) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# A worker that passed the barrier must have synchronized with the release:
# after observing done=1, the stale go=0 is unreadable.
system barrier { vars arrived go done; domain 2; env worker; dis releaser; dis checker }
thread worker {
  regs g
  store arrived 1
  g = load go; assume g == 1   # wait loop remodelled as load+assume
  store done 1
}
thread releaser {
  regs a
  a = load arrived; assume a == 1
  store go 1
}
thread checker {
  regs d g
  d = load done; assume d == 1
  g = load go; assume g == 0
  assert false
}
`,
		},
		{
			Name:   "barrier-release",
			Origin: "barrier: workers do pass once released (sanity companion)",
			Class:  "env(nocas) || dis_1(acyc)",
			Want:   Unsafe,
			MinEnv: 1,
			Src: `
system barrier2 { vars arrived go done; domain 2; env worker; dis coordinator }
thread worker {
  regs g
  store arrived 1
  g = load go; assume g == 1
  store done 1
}
thread coordinator {
  regs a d
  a = load arrived; assume a == 1
  store go 1
  d = load done; assume d == 1
  assert false
}
`,
		},
		{
			Name:   "chase-lev-steal",
			Origin: "Norris model-checker benchmarks [37]: Chase-Lev deque, single steal",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# Owner pushes one item and takes it unless a thief stole it first; the
# take/steal conflict is resolved by CAS on top. Double consumption of the
# item is the safety violation.
system chaselev { vars top item taken; domain 3; env observer; dis owner; dis thief }
thread observer {
  regs t
  t = load taken
  assume t == 2          # item consumed twice?
  assert false
}
thread owner {
  regs t k
  store item 1
  cas top 0 1            # take: claim the slot
  t = load taken
  store taken (t + 1)
}
thread thief {
  regs t k
  k = load item; assume k == 1
  cas top 0 1            # steal: claim the same slot
  t = load taken
  store taken (t + 1)
}
`,
		},
		{
			Name:   "rcu",
			Origin: "Lahav & Margalit [34]: RCU-style publish/reclaim",
			Class:  "env(nocas) || dis_1(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# The writer publishes data then flips the pointer; a reader that sees the
# new pointer must see initialized data.
system rcu { vars data ptr; domain 2; env reader; dis writer }
thread reader {
  regs p d
  p = load ptr; assume p == 1
  d = load data; assume d == 0   # uninitialized read after publish
  assert false
}
thread writer {
  store data 1
  store ptr 1
}
`,
		},
		{
			Name:   "seqlock",
			Origin: "seqlock reader consistency under RA",
			Class:  "env(nocas) || dis_1(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# Writer: seq 0→1 (odd: writing), update data, seq→2. A reader that saw an
# even seq, read data, and re-read the same seq must have a consistent view.
system seqlock { vars seq d1 d2; domain 3; env reader; dis writer }
thread reader {
  regs s1 a b s2
  s1 = load seq; assume s1 == 2
  a = load d1
  b = load d2
  s2 = load seq; assume s2 == 2
  assume a != b                 # torn read
  assert false
}
thread writer {
  store seq 1
  store d1 1
  store d2 1
  store seq 2
}
`,
		},
		{
			Name:   "phoenix-histogram",
			Origin: "Phoenix 2.0 benchmarks [29]: data-parallel histogram skeleton",
			Class:  "env(nocas, acyc) || dis_1(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# Workers read a shared input cell and mark the corresponding bucket; a
# bucket can only be marked if the matching input was present.
system histogram { vars input b0 b1; domain 2; env worker; dis checker }
thread worker {
  regs v
  v = load input
  if v == 0 { store b0 1 } else { store b1 1 }
}
thread checker {
  regs m
  m = load b1; assume m == 1    # bucket 1 marked, but input was never 1
  assert false
}
`,
		},
		{
			Name:   "env-chain-escalation",
			Origin: "paper Figure 3: unboundedly many producers chaining values",
			Class:  "env(nocas) || dis_1(acyc)",
			Want:   Unsafe,
			MinEnv: 4,
			Src: `
system chain { vars x; domain 6; env inc; dis watcher }
thread inc { regs r; r = load x; store x (r + 1) }
thread watcher { regs s; s = load x; assume s == 4; assert false }
`,
		},
		{
			Name:   "wrc-causality",
			Origin: "write-to-read causality litmus (forbidden under RA)",
			Class:  "env(nocas, acyc) || dis_1..2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
system wrc { vars x y; domain 2; env t1; dis t2; dis t3 }
thread t1 { store x 1 }
thread t2 { regs a; a = load x; assume a == 1; store y 1 }
thread t3 {
  regs b c
  b = load y; assume b == 1
  c = load x; assume c == 0
  assert false
}
`,
		},
		{
			Name:   "iriw",
			Origin: "independent reads of independent writes (allowed under RA)",
			Class:  "env(nocas, acyc) || dis_1..3(acyc)",
			Want:   Unsafe,
			MinEnv: 1, // the x-writer is the env thread

			Src: `
system iriw { vars x y f; domain 2; env w1; dis w2; dis r1; dis r2 }
thread w1 { store x 1 }
thread w2 { store y 1 }
thread r1 {
  regs a b
  a = load x; assume a == 1
  b = load y; assume b == 0
  store f 1
}
thread r2 {
  regs c d g
  c = load y; assume c == 1
  d = load x; assume d == 0
  g = load f; assume g == 1
  assert false
}
`,
		},
		{
			Name:   "ticketlock",
			Origin: "ticket lock via CAS (two acquisitions, mutual exclusion)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# Each thread takes a ticket by CAS on next; thread with ticket 0 enters
# immediately, the other waits for serving == 1 which is published on exit.
system ticket { vars next serving cs0; domain 3; env idle; dis t0; dis t1 }
thread idle { skip }
thread t0 {
  regs s
  choice {
    cas next 0 1                 # got ticket 0: enter
    store cs0 1
    store serving 1              # exit: serve ticket 1
  } or {
    cas next 1 2                 # got ticket 1: wait for serving == 1
    s = load serving; assume s == 1
    store cs0 1
  }
}
thread t1 {
  regs s c
  choice {
    cas next 0 1
    c = load cs0; assume c == 1  # in CS: t0 already was? violation
    assert false
  } or {
    cas next 1 2
    s = load serving; assume s == 1
    c = load cs0; assume c == 0  # t0 exited without marking? impossible
    assert false
  }
}
`,
		},
		{
			Name:   "treiber-push",
			Origin: "Treiber-stack push/pop pair (one shot, CAS on top)",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Safe,
			MinEnv: -1,
			Src: `
# Pusher writes the cell then swings top with CAS; popper swings top back
# and must observe the initialized cell (publication safety).
system treiber { vars top cell; domain 2; env idle; dis pusher; dis popper }
thread idle { skip }
thread pusher {
  store cell 1
  cas top 0 1
}
thread popper {
  regs v
  cas top 1 0
  v = load cell; assume v == 0   # uninitialized cell after successful pop
  assert false
}
`,
		},
		{
			Name:   "phoenix-wordcount",
			Origin: "Phoenix 2.0 benchmarks [29]: word-count combine skeleton",
			Class:  "env(nocas) || dis_1(acyc)",
			Want:   Unsafe,
			MinEnv: 2,
			Src: `
# Mappers emit counts by chaining increments on a shared tally; the reducer
# observing tally == 2 requires two mapper contributions (intended result).
system wordcount { vars tally done; domain 4; env mapper; dis reducer }
thread mapper {
  regs t
  t = load tally
  store tally (t + 1)
}
thread reducer {
  regs r
  r = load tally; assume r == 2
  assert false
}
`,
		},
		{
			Name:   "cas-env-supply",
			Origin: "infinite-supply behaviour: two CAS consume 'the same' env value",
			Class:  "env(nocas, acyc) || dis_1(acyc) || dis_2(acyc)",
			Want:   Unsafe,
			MinEnv: 2,
			Src: `
system cassupply { vars x a; domain 2; env w; dis t1; dis t2 }
thread w { store x 1 }
thread t1 { cas x 1 0; store a 1 }
thread t2 { regs r; cas x 1 0; r = load a; assume r == 1; assert false }
`,
		},
	}
}

// ByName returns the corpus entry with the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Corpus() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
