package bench

import (
	"fmt"
	"strings"
	"time"

	"paramra/internal/depgraph"
	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// fig3System builds the Figure 3 system: unboundedly many producers chain
// increasing values through x; the consumer (dis) loops z times, reading an
// ascending sequence, modelled loop-free by unrolling.
func fig3System(z int) *lang.System {
	var b strings.Builder
	fmt.Fprintf(&b, `
system fig3 { vars x y; domain %d; env producer; dis consumer }
thread producer {
  regs r s
  r = load y; assume r == 1
  s = load x
  store x (s + 1)
}
thread consumer {
  regs t
  store y 1
`, z+2)
	for i := 1; i <= z; i++ {
		fmt.Fprintf(&b, "  t = load x; assume t == %d\n", i)
	}
	b.WriteString("  assert false\n}\n")
	return lang.MustParseSystem(b.String())
}

// Fig3Row is one data point of the Figure 3 reproduction.
type Fig3Row struct {
	Z           int
	Unsafe      bool
	MacroStates int
	EnvConfigs  int
	EnvMsgs     int
	CostBound   int64
	Elapsed     time.Duration
}

// Fig3 reproduces Figure 3's phenomenon: the consumer can iterate its loop
// arbitrarily often under the simplified semantics, with the timestamp
// abstraction replacing the l distinct producers by reusable ⁺-timestamps.
// The §4.3 cost bound on the needed env threads grows with z.
func Fig3(maxZ int) ([]Fig3Row, error) {
	var out []Fig3Row
	for z := 1; z <= maxZ; z++ {
		sys := fig3System(z)
		v, err := simplified.New(sys, simplified.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := v.Verify()
		row := Fig3Row{
			Z: z, Unsafe: res.Unsafe,
			MacroStates: res.Stats.MacroStates,
			EnvConfigs:  res.Stats.EnvConfigs,
			EnvMsgs:     res.Stats.EnvMsgs,
			Elapsed:     time.Since(start),
		}
		if res.Unsafe {
			g, err := depgraph.FromViolation(sys, res.Violation)
			if err != nil {
				return nil, err
			}
			row.CostBound = g.CostGoal()
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig3Table formats the Figure 3 series.
func Fig3Table(rows []Fig3Row) *Table {
	t := &Table{
		Title:   "Figure 3: consumer loop bound z vs simplified-semantics verification",
		Columns: []string{"z", "unsafe", "macro-states", "env-cfgs", "env-msgs", "cost bound (#env)", "time"},
	}
	for _, r := range rows {
		t.AddRow(r.Z, r.Unsafe, r.MacroStates, r.EnvConfigs, r.EnvMsgs, r.CostBound,
			r.Elapsed.Round(time.Microsecond))
	}
	return t
}

// Fig4 renders the dependency graph of the Figure 4-style snippet, with the
// genthread resolution chosen by the first derivation found.
func Fig4() (string, error) {
	src := `
system fig4 { vars x y; domain 3; env worker }
thread worker {
  regs r
  choice {
    store x 1
  } or {
    r = load x; assume r == 1
    store y 2
  }
}
`
	sys := lang.MustParseSystem(src)
	yv, _ := sys.VarByName("y")
	v, err := simplified.New(sys, simplified.Options{Goal: &simplified.Goal{Var: yv, Val: 2}})
	if err != nil {
		return "", err
	}
	res := v.Verify()
	if !res.Unsafe {
		return "", fmt.Errorf("fig4: goal message not generatable")
	}
	g, err := depgraph.FromViolation(sys, res.Violation)
	if err != nil {
		return "", err
	}
	return "Figure 4: dependency graph for the two-env-thread snippet\n" +
		"(genthread((y,2)) is the first env instance to store it; by symmetry\n" +
		"any other instance yields the isomorphic second graph of the figure)\n\n" +
		g.String(), nil
}

// Fig5Row is one data point of the Figure 5 reproduction.
type Fig5Row struct {
	Z         int
	CostBound int64
	Height    int
	MaxFanIn  int
	Q0        int
}

// Fig5 reproduces the cost-annotated dependency graph: the cost of the goal
// message equals the consumer's loop bound z.
func Fig5(maxZ int) ([]Fig5Row, error) {
	var out []Fig5Row
	for z := 1; z <= maxZ; z++ {
		loads := strings.Repeat("  s = load x; assume s == 1\n", z)
		src := fmt.Sprintf(`
system fig5 { vars x y; domain 3; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 1 }
thread consumer {
  regs s
  store y 1
%s  store y 2
}
`, loads)
		sys := lang.MustParseSystem(src)
		yv, _ := sys.VarByName("y")
		v, err := simplified.New(sys, simplified.Options{Goal: &simplified.Goal{Var: yv, Val: 2}})
		if err != nil {
			return nil, err
		}
		res := v.Verify()
		if !res.Unsafe {
			return nil, fmt.Errorf("fig5 z=%d: goal not generated", z)
		}
		g, err := depgraph.FromViolation(sys, res.Violation)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Row{
			Z: z, CostBound: g.CostGoal(), Height: g.Height(), MaxFanIn: g.MaxFanIn(), Q0: g.Q0,
		})
	}
	return out, nil
}

// Fig5Table formats the Figure 5 series.
func Fig5Table(rows []Fig5Row) *Table {
	t := &Table{
		Title:   "Figure 5: cost-annotated dependency graph (cost(msg#) = z)",
		Columns: []string{"z", "cost(msg#)", "height", "max fan-in", "Q0"},
	}
	for _, r := range rows {
		t.AddRow(r.Z, r.CostBound, r.Height, r.MaxFanIn, r.Q0)
	}
	return t
}
