package bench

import (
	"strings"
	"testing"
)

func TestGapExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("instance sweeps skipped in -short mode")
	}
	rows, err := GapExperiment(5, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		e, ok := ByName(r.Name)
		if !ok {
			t.Fatalf("unknown entry %s", r.Name)
		}
		if r.Threshold != e.MinEnv {
			t.Errorf("%s: threshold %d, corpus MinEnv %d", r.Name, r.Threshold, e.MinEnv)
		}
		// Monotone: once unsafe, more env threads stay unsafe.
		seen := false
		for n, v := range r.Verdicts {
			if seen && !v {
				t.Errorf("%s: verdict flipped back to safe at n=%d", r.Name, n)
			}
			if v {
				seen = true
			}
		}
	}
	if s := GapTable(rows).String(); !strings.Contains(s, "threshold") {
		t.Error("table broken")
	}
}
