package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"paramra/internal/lang"
	"paramra/internal/simplified"
	"paramra/internal/tqbf"
)

// ScalingRow is one data point of a scaling series.
type ScalingRow struct {
	Family  string
	Param   int
	Unsafe  bool
	Macro   int
	EnvCfgs int
	EnvMsgs int
	Elapsed time.Duration
}

// ScalingExperiment produces the growth curves for the PSPACE cell of
// Table 1 along three axes: the data-domain size (value-chain depth), the
// TQBF quantifier depth, and the number of dis threads.
func ScalingExperiment() ([]ScalingRow, error) {
	var out []ScalingRow

	run := func(family string, param int, sys *lang.System) error {
		v, err := simplified.New(sys, simplified.Options{})
		if err != nil {
			return fmt.Errorf("%s(%d): %w", family, param, err)
		}
		start := time.Now()
		res := v.Verify()
		out = append(out, ScalingRow{
			Family: family, Param: param, Unsafe: res.Unsafe,
			Macro: res.Stats.MacroStates, EnvCfgs: res.Stats.EnvConfigs,
			EnvMsgs: res.Stats.EnvMsgs, Elapsed: time.Since(start),
		})
		return nil
	}

	// Axis 1: domain size — env threads chain increments, the watcher waits
	// for the maximal value.
	for _, d := range []int{4, 8, 12, 16, 20} {
		src := fmt.Sprintf(`
system chain { vars x; domain %d; env inc; dis w }
thread inc { regs r; r = load x; store x (r + 1) }
thread w { regs s; s = load x; assume s == %d; assert false }
`, d, d-1)
		if err := run("domain", d, lang.MustParseSystem(src)); err != nil {
			return nil, err
		}
	}

	// Axis 2: TQBF quantifier depth (fixed seed, 2 clauses).
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2} {
		q := tqbf.Random(r, n, 2)
		sys, err := tqbf.Reduce(q)
		if err != nil {
			return nil, err
		}
		if err := run("tqbf-depth", n, sys); err != nil {
			return nil, err
		}
	}

	// Axis 3: number of dis threads — independent writers plus a reader
	// that needs all flags.
	for _, k := range []int{1, 2, 3, 4} {
		var b strings.Builder
		fmt.Fprintf(&b, "system fan { vars f r")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, " w%d", i)
		}
		fmt.Fprintf(&b, "; domain 2; env helper")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, "; dis writer%d", i)
		}
		fmt.Fprintf(&b, "; dis reader }\n")
		b.WriteString("thread helper { store f 1 }\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, "thread writer%d { regs h; h = load f; assume h == 1; store w%d 1 }\n", i, i)
		}
		b.WriteString("thread reader {\n  regs v\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, "  v = load w%d; assume v == 1\n", i)
		}
		b.WriteString("  assert false\n}\n")
		if err := run("dis-count", k, lang.MustParseSystem(b.String())); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScalingTable formats the scaling series.
func ScalingTable(rows []ScalingRow) *Table {
	t := &Table{
		Title:   "Scaling: verifier growth along domain size, TQBF depth, and dis-thread count",
		Columns: []string{"family", "param", "unsafe", "macro-states", "env-cfgs", "env-msgs", "time"},
	}
	for _, r := range rows {
		t.AddRow(r.Family, r.Param, r.Unsafe, r.Macro, r.EnvCfgs, r.EnvMsgs, r.Elapsed.Round(time.Microsecond))
	}
	t.Notes = append(t.Notes,
		"PSPACE-hardness (Theorem 5.1) makes worst-case growth unavoidable; the tqbf-depth family shows it",
		"the domain family grows polynomially: the abstraction never enumerates thread counts")
	return t
}
