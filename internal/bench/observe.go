package bench

import "paramra/internal/obs"

// Instrumentation is the optional observability context rabench threads
// into the experiments: a parent span for per-run phase spans and a metrics
// registry for the engine's gauges and histograms. The zero value disables
// both (every instrumentation call degrades to a pointer-check no-op).
type Instrumentation struct {
	Trace   *obs.Span
	Metrics *obs.Registry
}

// instr is the process-wide instrumentation, set once by rabench before the
// experiments start.
var instr Instrumentation

// SetInstrumentation installs the observability context consulted by the
// experiments. Not safe to call concurrently with a running experiment.
func SetInstrumentation(i Instrumentation) { instr = i }
