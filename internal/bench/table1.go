package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"paramra/internal/cm"
	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/simplified"
	"paramra/internal/tqbf"
)

// Table1 regenerates the paper's Table 1 (the complexity landscape), with
// one executable demonstration per cell:
//
//   - env(nocas) ∥ dis_1(acyc) ∥ … — PSPACE-complete: the verifier decides a
//     scaling family (TQBF reductions of growing quantifier depth; the lower
//     bound says the growth is unavoidable in the worst case);
//   - env(nocas) ∥ dis(nocas) — non-primitive-recursive / open: looping dis
//     threads are rejected and handled only by bounded unrolling;
//   - env(acyc) with CAS — undecidable (Theorem 1.1): the counter-machine
//     reduction is rejected by the verifier; bounded instances are explored
//     concretely.
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: complexity landscape, exercised",
		Columns: []string{"cell", "status", "demonstration"},
	}

	// PSPACE cell: TQBF scaling sweep.
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2} {
		q := tqbf.Random(r, n, 2)
		sys, err := tqbf.Reduce(q)
		if err != nil {
			t.AddRow("env(nocas)||dis(acyc): PSPACE", "error", err.Error())
			continue
		}
		v, err := simplified.New(sys, simplified.Options{})
		if err != nil {
			t.AddRow("env(nocas)||dis(acyc): PSPACE", "error", err.Error())
			continue
		}
		start := time.Now()
		res := v.Verify()
		t.AddRow("env(nocas)||dis(acyc): PSPACE", "decided",
			fmt.Sprintf("TQBF n=%d (%d vars): verdict=%v==QBF=%v, env-cfgs=%d, %v",
				n, len(q.Vars), res.Unsafe, q.Eval(), res.Stats.EnvConfigs,
				time.Since(start).Round(time.Microsecond)))
	}

	// dis(nocas) with loops: rejected, bounded unrolling as the fallback.
	loopSys := lang.MustParseSystem(`
system looping { vars x; domain 4; env w; dis d }
thread w { regs r; r = load x; store x (r + 1) }
thread d { regs s; while s != 3 { s = load x }; assert false }
`)
	_, err := simplified.New(loopSys, simplified.Options{})
	if !errors.Is(err, simplified.ErrDisCyclic) {
		t.AddRow("env(nocas)||dis(nocas): beyond PSPACE", "BUG", "looping dis accepted")
	} else {
		for _, k := range []int{1, 3} {
			u := lang.UnrollSystem(loopSys, k)
			v, err := simplified.New(u, simplified.Options{})
			if err != nil {
				t.AddRow("env(nocas)||dis(nocas): beyond PSPACE", "error", err.Error())
				continue
			}
			res := v.Verify()
			t.AddRow("env(nocas)||dis(nocas): beyond PSPACE", "under-approx",
				fmt.Sprintf("unroll k=%d: unsafe=%v (exact problem NPR/open [1])", k, res.Unsafe))
		}
	}

	// env with CAS: undecidable; counter-machine reduction.
	m := &cm.Machine{States: []cm.Instr{
		{Kind: cm.OpInc, Counter: 0, Next: 1},
		{Kind: cm.OpInc, Counter: 0, Next: 2},
		{Kind: cm.OpHalt},
	}}
	casSys, err := cm.Reduce(m, 3)
	if err != nil {
		t.AddRow("env(acyc) with CAS: undecidable", "error", err.Error())
	} else {
		_, err = simplified.New(casSys, simplified.Options{})
		status := "rejected by verifier (Theorem 1.1)"
		if !errors.Is(err, simplified.ErrEnvCAS) {
			status = "BUG: env CAS accepted"
		}
		inst, ierr := ra.NewInstance(casSys, 3)
		detail := ""
		if ierr == nil {
			res := inst.Explore(ra.Limits{MaxStates: 2_000_000})
			detail = fmt.Sprintf("bounded check, 3 threads: machine halts in 2 steps, unsafe=%v", res.Unsafe)
		}
		t.AddRow("env(acyc) with CAS: undecidable", status, detail)
	}
	t.Notes = append(t.Notes,
		"undecidability and NPR cells cannot be 'run'; the demonstrations show the class boundary and the bounded fallbacks")
	return t
}
