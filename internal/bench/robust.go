package bench

import (
	"paramra/internal/ra"
	"paramra/internal/sc"
)

// RobustRow is one data point of the robustness experiment: the same fixed
// instance explored under sequential consistency and under release-acquire.
// An entry is *non-robust* when the violation exists only under RA — the
// benchmarks of Lahav & Margalit [34] that motivate §1's classification.
type RobustRow struct {
	Name     string
	NEnv     int
	SCUnsafe bool
	RAUnsafe bool
	Complete bool
}

// Weak reports an RA-only violation.
func (r RobustRow) Weak() bool { return r.RAUnsafe && !r.SCUnsafe }

// RobustnessExperiment compares SC and RA assert-reachability across the
// corpus, at the smallest meaningful instance size per entry.
func RobustnessExperiment(maxStates int) ([]RobustRow, error) {
	var out []RobustRow
	for _, e := range Corpus() {
		n := e.MinEnv
		if n < 0 {
			n = 1 // safe entries: give them one env thread to act with
		}
		sys := e.System()
		if sys.Env == nil {
			n = 0
		}
		rob, err := sc.CompareRobustness(sys, n, ra.Limits{MaxStates: maxStates})
		if err != nil {
			return nil, err
		}
		out = append(out, RobustRow{
			Name: e.Name, NEnv: n,
			SCUnsafe: rob.SCUnsafe, RAUnsafe: rob.RAUnsafe, Complete: rob.Complete,
		})
	}
	return out, nil
}

// RobustTable formats the robustness classification.
func RobustTable(rows []RobustRow) *Table {
	t := &Table{
		Title:   "Robustness: assert-reachability under SC vs RA (fixed instances)",
		Columns: []string{"benchmark", "#env", "SC", "RA", "classification", "exhaustive"},
	}
	for _, r := range rows {
		class := "robust here"
		switch {
		case r.Weak():
			class = "WEAK (RA-only violation)"
		case r.RAUnsafe && r.SCUnsafe:
			class = "violation also under SC"
		}
		t.AddRow(r.Name, r.NEnv, verdictStr(r.SCUnsafe), verdictStr(r.RAUnsafe), class, r.Complete)
	}
	t.Notes = append(t.Notes,
		"SC executions are RA executions (always reading maximal timestamps), so SC-unsafe ⇒ RA-unsafe",
		"the §1 robustness benchmarks (peterson, dekker, lamport, sb) are exactly the WEAK rows")
	return t
}
