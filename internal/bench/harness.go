package bench

import (
	"fmt"
	"time"

	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/simplified"
)

// CorpusReport is the result of running one corpus entry through the
// parameterized verifier.
type CorpusReport struct {
	Entry    Entry
	Verdict  Verdict
	Complete bool
	Stats    simplified.Stats
	Elapsed  time.Duration
}

// RunEntry verifies a single corpus entry.
func RunEntry(e Entry) (CorpusReport, error) {
	v, err := simplified.New(e.System(), simplified.Options{
		Trace:   instr.Trace,
		Metrics: instr.Metrics,
	})
	if err != nil {
		return CorpusReport{}, fmt.Errorf("%s: %w", e.Name, err)
	}
	start := time.Now()
	res := v.Verify()
	rep := CorpusReport{
		Entry:    e,
		Complete: res.Unsafe || res.Complete,
		Stats:    res.Stats,
		Elapsed:  time.Since(start),
		Verdict:  Safe,
	}
	if res.Unsafe {
		rep.Verdict = Unsafe
	}
	return rep, nil
}

// RunCorpus verifies every corpus entry (E11, the §1 classification table).
func RunCorpus() ([]CorpusReport, error) {
	var out []CorpusReport
	for _, e := range Corpus() {
		rep, err := RunEntry(e)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// CorpusTable formats corpus reports as the benchmark table.
func CorpusTable(reps []CorpusReport) *Table {
	t := &Table{
		Title:   "Benchmark corpus (classification of §1 + litmus tests)",
		Columns: []string{"benchmark", "class", "verdict", "expected", "macro-states", "env-cfgs", "env-msgs", "time"},
	}
	for _, r := range reps {
		t.AddRow(r.Entry.Name, r.Entry.Class, r.Verdict, r.Entry.Want,
			r.Stats.MacroStates, r.Stats.EnvConfigs, r.Stats.EnvMsgs,
			r.Elapsed.Round(time.Microsecond))
	}
	return t
}

// ClassTable builds the per-thread classification table of the corpus: one
// row per thread with its computed lang.Classify signature (acyc/nocas),
// next to the paper-notation class the entry documents and whether the
// system falls in the decidable fragment.
func ClassTable() *Table {
	t := &Table{
		Title:   "Corpus thread-classification signatures (lang.Classify)",
		Columns: []string{"benchmark", "role", "thread", "signature", "decidable"},
	}
	for _, e := range Corpus() {
		sys := e.System()
		dec := lang.Classify(sys).Decidable()
		name := e.Name
		row := func(role string, p *lang.Program) {
			t.AddRow(name, role, p.Name, lang.ClassifyProgram(p).String(), dec)
			name = "" // only the first thread row carries the entry name
		}
		if sys.Env != nil {
			row("env", sys.Env)
		}
		for _, d := range sys.Dis {
			row("dis", d)
		}
	}
	return t
}

// MinEnvConcrete searches for the smallest number of env threads whose
// concrete instance is unsafe, up to maxN (E9 helper). Returns -1 when none
// is found.
func MinEnvConcrete(sys *lang.System, maxN, maxStates int) (int, error) {
	for n := 0; n <= maxN; n++ {
		inst, err := ra.NewInstance(sys, n)
		if err != nil {
			return -1, err
		}
		res := inst.Explore(ra.Limits{MaxStates: maxStates, Symmetry: true})
		if res.Unsafe {
			return n, nil
		}
		if !res.Complete {
			return -1, fmt.Errorf("exploration incomplete at n=%d", n)
		}
	}
	return -1, nil
}
