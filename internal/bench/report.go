package bench

import (
	"fmt"
	"strings"
)

// Table is a simple text table used by all experiment reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed after the table body.
	Notes []string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
