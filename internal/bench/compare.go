package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Comparison against a checked-in parallel baseline (BENCH_parallel.json).
// Raw wall times are incomparable across machines, so the comparison first
// calibrates: the median wall ratio (current/baseline) over all matched
// entries estimates the machine-speed factor, and each entry is then judged
// by its ratio relative to that median. A uniform 2x-slower machine
// calibrates away; one benchmark regressing against the others does not.
// Macro-state counts are deterministic and must match exactly — a drift
// there is a functional change, not noise.

// CompareRow is one (benchmark, worker count) entry of a baseline
// comparison.
type CompareRow struct {
	Name                string  `json:"name"`
	Workers             int     `json:"workers"`
	BaselineWallNs      int64   `json:"baselineWallNs"`
	WallNs              int64   `json:"wallNs"`
	Ratio               float64 `json:"ratio"`     // wall / baselineWall, raw
	NormRatio           float64 `json:"normRatio"` // ratio / calibration
	MacroStates         int     `json:"macroStates"`
	BaselineMacroStates int     `json:"baselineMacroStates"`
	// Verdict is "ok", "slower" (normRatio over tolerance), "states-drift"
	// (deterministic counter mismatch), or "noisy" (baseline too short to
	// gate; reported but never failed).
	Verdict string `json:"verdict"`
}

// CompareReport is the outcome of comparing a run against a baseline.
type CompareReport struct {
	BaselinePath string       `json:"baselinePath"`
	Tolerance    float64      `json:"tolerance"`
	Calibration  float64      `json:"calibration"` // median wall ratio
	Rows         []CompareRow `json:"rows"`
	// Regressions holds one human-readable line per failing row.
	Regressions []string `json:"regressions,omitempty"`
	// ProcsWarning is non-empty when the baseline's recorded GOMAXPROCS
	// differs from the comparison run's (see CheckProcs).
	ProcsWarning string `json:"procsWarning,omitempty"`
}

// compareMinWall is the gating floor: entries whose baseline wall is below
// it carry too much scheduler noise for a ratio test and are reported as
// "noisy" instead of gated. The heavy entries are the signal.
const compareMinWall = 10 * time.Millisecond

// LoadParallelBaseline reads a BENCH_parallel.json file.
func LoadParallelBaseline(path string) ([]ParallelRow, error) {
	b, err := LoadParallelBaselineFile(path)
	if err != nil {
		return nil, err
	}
	return b.Rows, nil
}

// LoadParallelBaselineFile reads a BENCH_parallel.json file including its
// recording-machine metadata.
func LoadParallelBaselineFile(path string) (*ParallelBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ParallelBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("bench: %s: empty baseline", path)
	}
	return &b, nil
}

// CheckProcs compares a baseline's recorded GOMAXPROCS against the current
// run's and returns a human-readable warning when they disagree (empty means
// comparable). A baseline recorded at a different parallelism measures a
// different engine configuration — most egregiously GOMAXPROCS=1, where
// worker counts above 1 add pure overhead — so ratios against it are not a
// regression signal. Callers either print the warning loudly or, with
// -require-procs-match, turn it into a hard error.
func CheckProcs(b *ParallelBaseline, runProcs int) string {
	switch {
	case b.GoMaxProcs == 0:
		return fmt.Sprintf("baseline records no gomaxprocs (pre-metadata file); current run has GOMAXPROCS=%d — re-record the baseline", runProcs)
	case b.GoMaxProcs != runProcs:
		return fmt.Sprintf("baseline was recorded at GOMAXPROCS=%d but this run has GOMAXPROCS=%d — wall-time ratios are not comparable; re-record the baseline on a matching machine", b.GoMaxProcs, runProcs)
	default:
		return ""
	}
}

// CompareParallel re-runs the parallel experiment at the given worker
// counts and compares the (name, workers) pairs present in both the run and
// the baseline. inject multiplies the measured wall of matching benchmark
// names — the selftest hook proving the gate trips on a real slowdown.
func CompareParallel(ctx context.Context, baselinePath string, workerCounts []int, tolerance float64, inject map[string]float64) (*CompareReport, error) {
	base, err := LoadParallelBaselineFile(baselinePath)
	if err != nil {
		return nil, err
	}
	warn := CheckProcs(base, runtime.GOMAXPROCS(0))
	rows, err := ParallelExperiment(ctx, workerCounts)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		if f, ok := inject[rows[i].Name]; ok {
			rows[i].Wall = time.Duration(float64(rows[i].Wall) * f)
		}
	}
	rep, err := compareRows(base.Rows, rows, tolerance)
	if err != nil {
		return nil, err
	}
	rep.BaselinePath = baselinePath
	rep.ProcsWarning = warn
	return rep, nil
}

// compareRows is the pure comparison: calibrate by the median ratio, then
// judge every matched entry. Split from CompareParallel so the gate logic
// is testable without timing anything.
func compareRows(base, cur []ParallelRow, tolerance float64) (*CompareReport, error) {
	if tolerance <= 1 {
		return nil, fmt.Errorf("bench: tolerance %.2f must be > 1", tolerance)
	}
	type key struct {
		name    string
		workers int
	}
	baseBy := map[key]ParallelRow{}
	for _, r := range base {
		baseBy[key{r.Name, r.Workers}] = r
	}
	rep := &CompareReport{Tolerance: tolerance}
	var ratios []float64
	for _, r := range cur {
		b, ok := baseBy[key{r.Name, r.Workers}]
		if !ok || b.Wall <= 0 {
			continue
		}
		row := CompareRow{
			Name: r.Name, Workers: r.Workers,
			BaselineWallNs: int64(b.Wall), WallNs: int64(r.Wall),
			Ratio:       float64(r.Wall) / float64(b.Wall),
			MacroStates: r.MacroStates, BaselineMacroStates: b.MacroStates,
		}
		rep.Rows = append(rep.Rows, row)
		ratios = append(ratios, row.Ratio)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("bench: no experiment entry matches the baseline (names or worker counts drifted)")
	}
	rep.Calibration = median(ratios)
	for i := range rep.Rows {
		row := &rep.Rows[i]
		row.NormRatio = row.Ratio / rep.Calibration
		switch {
		case row.MacroStates != row.BaselineMacroStates:
			row.Verdict = "states-drift"
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"%s (j=%d): macro-states %d, baseline %d (deterministic counter drifted)",
				row.Name, row.Workers, row.MacroStates, row.BaselineMacroStates))
		case row.BaselineWallNs < int64(compareMinWall):
			row.Verdict = "noisy"
		case row.NormRatio > tolerance:
			row.Verdict = "slower"
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"%s (j=%d): %.2fx slower than baseline after calibration (tolerance %.2fx; raw %s vs %s)",
				row.Name, row.Workers, row.NormRatio, tolerance,
				time.Duration(row.WallNs).Round(time.Microsecond),
				time.Duration(row.BaselineWallNs).Round(time.Microsecond)))
		default:
			row.Verdict = "ok"
		}
	}
	return rep, nil
}

// median of an unsorted, non-empty slice (the even case averages the two
// middle values).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CompareTable formats a comparison for humans.
func CompareTable(rep *CompareReport) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Parallel baseline comparison (calibration %.2fx, tolerance %.2fx)", rep.Calibration, rep.Tolerance),
		Columns: []string{"benchmark", "workers", "baseline", "current", "norm-ratio", "verdict"},
		Notes: []string{
			"norm-ratio is the wall ratio divided by the run's median ratio (machine-speed calibration)",
			fmt.Sprintf("entries with baselines under %s are too noisy to gate and only reported", compareMinWall),
		},
	}
	if rep.ProcsWarning != "" {
		t.Notes = append(t.Notes, "WARNING: "+rep.ProcsWarning)
	}
	for _, r := range rep.Rows {
		t.AddRow(r.Name, r.Workers,
			time.Duration(r.BaselineWallNs).Round(time.Microsecond),
			time.Duration(r.WallNs).Round(time.Microsecond),
			fmt.Sprintf("%.2fx", r.NormRatio), r.Verdict)
	}
	return t
}

// ParseInjectSlowdown parses a comma-separated NAME=FACTOR list (the
// -inject-slowdown selftest flag). An empty input is an empty map.
func ParseInjectSlowdown(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, factor, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bench: inject-slowdown %q: want NAME=FACTOR", part)
		}
		f, err := strconv.ParseFloat(factor, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bench: inject-slowdown %q: factor must be a positive number", part)
		}
		out[name] = f
	}
	return out, nil
}
