package bench

import (
	"strings"
	"testing"
)

func TestRunCorpusReports(t *testing.T) {
	reps, err := RunCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(Corpus()) {
		t.Fatalf("got %d reports for %d entries", len(reps), len(Corpus()))
	}
	for _, r := range reps {
		if r.Verdict != r.Entry.Want {
			t.Errorf("%s: verdict %v, want %v", r.Entry.Name, r.Verdict, r.Entry.Want)
		}
		if !r.Complete {
			t.Errorf("%s: incomplete", r.Entry.Name)
		}
	}
	tbl := CorpusTable(reps).String()
	if !strings.Contains(tbl, "prodcons-fig1") || !strings.Contains(tbl, "UNSAFE") {
		t.Errorf("table rendering broken:\n%s", tbl)
	}
}

func TestClassTable(t *testing.T) {
	tbl := ClassTable()
	threads := 0
	for _, e := range Corpus() {
		sys := e.System()
		threads += len(sys.Dis)
		if sys.Env != nil {
			threads++
		}
	}
	if len(tbl.Rows) != threads {
		t.Fatalf("got %d rows for %d corpus threads", len(tbl.Rows), threads)
	}
	s := tbl.String()
	for _, want := range []string{"prodcons-fig1", "(nocas, acyc)", "decidable"} {
		if !strings.Contains(s, want) {
			t.Errorf("class table missing %q:\n%s", want, s)
		}
	}
	// Every row must carry a parenthesised (cas?, cyc?) signature.
	for _, row := range tbl.Rows {
		if !strings.Contains(row[3], "(") || !strings.Contains(row[3], ")") {
			t.Errorf("row %v: malformed signature %q", row, row[3])
		}
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1()
	s := tbl.String()
	if strings.Contains(s, "BUG") || strings.Contains(s, "error") {
		t.Fatalf("Table 1 reports problems:\n%s", s)
	}
	for _, want := range []string{"PSPACE", "undecidable", "rejected by verifier"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
	// The PSPACE rows must show verifier/QBF agreement (printed as
	// verdict=X==QBF=X with equal values).
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "verdict=true") && !strings.Contains(line, "QBF=true") {
			t.Errorf("verdict/QBF mismatch: %s", line)
		}
		if strings.Contains(line, "verdict=false") && !strings.Contains(line, "QBF=false") {
			t.Errorf("verdict/QBF mismatch: %s", line)
		}
	}
}

func TestFig3Series(t *testing.T) {
	rows, err := Fig3(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Unsafe {
			t.Errorf("z=%d should be unsafe", r.Z)
		}
		if r.CostBound < int64(r.Z) {
			t.Errorf("z=%d: cost bound %d below z", r.Z, r.CostBound)
		}
	}
	// The env-message count should grow with z (more values chained).
	if rows[0].EnvMsgs >= rows[len(rows)-1].EnvMsgs {
		t.Errorf("env msgs not growing: %d .. %d", rows[0].EnvMsgs, rows[len(rows)-1].EnvMsgs)
	}
	if s := Fig3Table(rows).String(); !strings.Contains(s, "Figure 3") {
		t.Error("fig3 table broken")
	}
}

func TestFig4Render(t *testing.T) {
	s, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "goal") || !strings.Contains(s, "reads") {
		t.Errorf("fig4 rendering missing structure:\n%s", s)
	}
}

func TestFig5CostMatchesZ(t *testing.T) {
	rows, err := Fig5(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CostBound != int64(r.Z) {
			t.Errorf("z=%d: cost = %d, want z", r.Z, r.CostBound)
		}
	}
	if s := Fig5Table(rows).String(); !strings.Contains(s, "cost(msg#)") {
		t.Error("fig5 table broken")
	}
}

func TestCacheExperiment(t *testing.T) {
	rows, err := CacheExperiment()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MinCache <= 0 {
			t.Errorf("%s: no finite min cache found", r.Name)
		}
		if r.MinCache > r.Q0Squared {
			t.Errorf("%s: min cache %d exceeds the Q0² bound %d", r.Name, r.MinCache, r.Q0Squared)
		}
		if !r.CompactOK {
			t.Errorf("%s: compacted graph violates Lemma 4.5 bounds", r.Name)
		}
	}
	if s := CacheTable(rows).String(); !strings.Contains(s, "min cache") {
		t.Error("cache table broken")
	}
}

func TestThreadBoundExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("concrete sweeps skipped in -short mode")
	}
	rows, err := ThreadBoundExperiment(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.ActualMin < 0 {
			t.Errorf("%s: concrete minimum not found", r.Name)
			continue
		}
		// §4.3: the cost is a sound over-approximation.
		if r.CostBound < int64(r.ActualMin) {
			t.Errorf("%s: cost bound %d below actual minimum %d", r.Name, r.CostBound, r.ActualMin)
		}
	}
	if s := ThreadTable(rows).String(); !strings.Contains(s, "cost(G)") {
		t.Error("thread table broken")
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FixpointVerdict != r.DatalogVerdict {
			t.Errorf("%s: fixpoint %v vs datalog %v", r.Name, r.FixpointVerdict, r.DatalogVerdict)
		}
		if r.Skeletons < 1 {
			t.Errorf("%s: no skeletons", r.Name)
		}
	}
	if s := AblationTable(rows).String(); !strings.Contains(s, "t_fix") {
		t.Error("ablation table broken")
	}
}

func TestMinEnvConcreteHelper(t *testing.T) {
	e, _ := ByName("prodcons-fig1")
	n, err := MinEnvConcrete(e.System(), 3, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("min env = %d, want 1", n)
	}
	safeE, _ := ByName("mp-litmus")
	n, err = MinEnvConcrete(safeE.System(), 2, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Errorf("safe entry reported min env %d", n)
	}
}
