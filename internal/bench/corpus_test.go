package bench

import (
	"testing"

	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/simplified"
)

func TestCorpusParsesAndClassifies(t *testing.T) {
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			sys, err := lang.ParseSystem(e.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			c := lang.Classify(sys)
			if !c.Decidable() {
				t.Errorf("corpus entry outside the decidable class: %s", c)
			}
			if e.Class == "" {
				t.Error("missing class annotation")
			}
		})
	}
}

// TestCorpusVerdicts checks every entry's expected verdict with the
// parameterized verifier.
func TestCorpusVerdicts(t *testing.T) {
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			v, err := simplified.New(e.System(), simplified.Options{})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res := v.Verify()
			if !res.Unsafe && !res.Complete {
				t.Fatal("verification incomplete")
			}
			got := Safe
			if res.Unsafe {
				got = Unsafe
			}
			if got != e.Want {
				t.Errorf("verdict = %v, want %v", got, e.Want)
			}
		})
	}
}

// TestCorpusMinEnv cross-checks the MinEnv annotations against concrete RA
// exploration: unsafe at MinEnv threads, safe below.
func TestCorpusMinEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("concrete sweeps skipped in -short mode")
	}
	for _, e := range Corpus() {
		e := e
		if e.Want != Unsafe {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			sys := e.System()
			for n := 0; n <= e.MinEnv; n++ {
				inst, err := ra.NewInstance(sys, n)
				if err != nil {
					t.Fatalf("instance: %v", err)
				}
				res := inst.Explore(ra.Limits{MaxStates: 2_000_000})
				if !res.Unsafe && !res.Complete {
					t.Skipf("n=%d exploration incomplete", n)
				}
				if n < e.MinEnv && res.Unsafe {
					t.Errorf("unsafe already at n=%d (MinEnv=%d)", n, e.MinEnv)
				}
				if n == e.MinEnv && !res.Unsafe {
					t.Errorf("still safe at annotated MinEnv=%d", n)
				}
			}
		})
	}
}

// TestCorpusSafeEntriesConcrete spot-checks safe entries against concrete
// instances (the abstraction must not be hiding concrete violations).
func TestCorpusSafeEntriesConcrete(t *testing.T) {
	if testing.Short() {
		t.Skip("concrete sweeps skipped in -short mode")
	}
	for _, e := range Corpus() {
		e := e
		if e.Want != Safe {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			sys := e.System()
			for n := 0; n <= 2; n++ {
				inst, err := ra.NewInstance(sys, n)
				if err != nil {
					t.Fatalf("instance: %v", err)
				}
				res := inst.Explore(ra.Limits{MaxStates: 2_000_000})
				if res.Unsafe {
					t.Fatalf("concrete violation at n=%d for an entry marked safe:\n%s",
						n, ra.FormatWitness(res.Witness))
				}
				if !res.Complete {
					t.Logf("n=%d not exhaustive; partial evidence only", n)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("prodcons-fig1"); !ok {
		t.Error("prodcons-fig1 missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("nonexistent found")
	}
}
