package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTrace writes a minimal valid JSONL trace: one root span named root
// with duration rootNs, holding one child span named child with duration
// childNs (child must fit inside the root).
func writeTrace(t *testing.T, path, root string, rootNs int64, child string, childNs int64) {
	t.Helper()
	body := fmt.Sprintf(
		`{"ev":"b","id":1,"name":%q,"t":0}
{"ev":"b","id":2,"par":1,"name":%q,"t":1}
{"ev":"e","id":2,"t":%d}
{"ev":"e","id":1,"t":%d}
`, root, child, 1+childNs, rootNs)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMergedReportPercentiles aggregates 100 single-request traces whose
// "verify" durations are 1..100ns and pins the nearest-rank percentiles.
func TestMergedReportPercentiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 1; i <= 100; i++ {
		p := filepath.Join(dir, fmt.Sprintf("t%03d.trace.jsonl", i))
		writeTrace(t, p, "verify", int64(i+10), "fixpoint", int64(i))
		paths = append(paths, p)
	}
	rep, err := BuildMergedRunReport(paths, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spans != 200 {
		t.Errorf("Spans = %d, want 200", rep.Spans)
	}
	if len(rep.TraceFiles) != 100 || rep.TraceFile != "" {
		t.Errorf("TraceFiles=%d TraceFile=%q, want 100 files and no single file", len(rep.TraceFiles), rep.TraceFile)
	}
	byName := map[string]PhaseSummary{}
	for _, p := range rep.Phases {
		byName[p.Name] = p
	}
	fp := byName["fixpoint"]
	if fp.Count != 100 || fp.MinNs != 1 || fp.MaxNs != 100 {
		t.Errorf("fixpoint count/min/max = %d/%d/%d, want 100/1/100", fp.Count, fp.MinNs, fp.MaxNs)
	}
	// Nearest rank over 1..100: pXX is exactly XX.
	if fp.P50Ns != 50 || fp.P95Ns != 95 || fp.P99Ns != 99 {
		t.Errorf("fixpoint p50/p95/p99 = %d/%d/%d, want 50/95/99", fp.P50Ns, fp.P95Ns, fp.P99Ns)
	}
	// Roots are 11..110; WallNs is their sum.
	var wantWall int64
	for i := int64(11); i <= 110; i++ {
		wantWall += i
	}
	if rep.WallNs != wantWall {
		t.Errorf("WallNs = %d, want %d", rep.WallNs, wantWall)
	}
}

// TestSingleTraceReportKeepsShape pins the one-file path: TraceFile set,
// percentiles of a single observation collapse onto that observation.
func TestSingleTraceReportKeepsShape(t *testing.T) {
	p := filepath.Join(t.TempDir(), "trace.jsonl")
	writeTrace(t, p, "verify", 1000, "fixpoint", 400)
	rep, err := BuildRunReport(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceFile != p || rep.TraceFiles != nil {
		t.Errorf("TraceFile=%q TraceFiles=%v, want the single path and nil", rep.TraceFile, rep.TraceFiles)
	}
	want := []PhaseSummary{
		{Name: "verify", Count: 1, TotalNs: 1000, MinNs: 1000, MaxNs: 1000, P50Ns: 1000, P95Ns: 1000, P99Ns: 1000},
		{Name: "fixpoint", Count: 1, TotalNs: 400, MinNs: 400, MaxNs: 400, P50Ns: 400, P95Ns: 400, P99Ns: 400},
	}
	if !reflect.DeepEqual(rep.Phases, want) {
		t.Errorf("Phases = %+v, want %+v", rep.Phases, want)
	}
}

// TestExpandTraceArgs: directories expand to their sorted *.jsonl files,
// plain files pass through, empty directories are an error.
func TestExpandTraceArgs(t *testing.T) {
	dir := t.TempDir()
	b := filepath.Join(dir, "b.trace.jsonl")
	a := filepath.Join(dir, "a.trace.jsonl")
	for _, p := range []string{b, a} {
		writeTrace(t, p, "verify", 10, "fixpoint", 5)
	}
	// A stray non-trace file must not be picked up.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	lone := filepath.Join(t.TempDir(), "lone.jsonl")
	writeTrace(t, lone, "verify", 10, "fixpoint", 5)

	got, err := ExpandTraceArgs([]string{lone, dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{lone, a, b}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandTraceArgs = %v, want %v", got, want)
	}

	if _, err := ExpandTraceArgs([]string{t.TempDir()}); err == nil {
		t.Error("empty directory: want error, got nil")
	}
	if _, err := ExpandTraceArgs([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("missing file: want error, got nil")
	}
}

// TestIsMetricsArg pins the positional-compat heuristic of rabench report.
func TestIsMetricsArg(t *testing.T) {
	dir := t.TempDir()
	jsonDir := filepath.Join(dir, "traces.json")
	if err := os.Mkdir(jsonDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		arg  string
		want bool
	}{
		{"metrics.json", true},
		{"trace.jsonl", false},
		{"tracedir", false},
		{jsonDir, false}, // a directory is a trace dir even if named *.json
	}
	for _, tc := range cases {
		if got := IsMetricsArg(tc.arg); got != tc.want {
			t.Errorf("IsMetricsArg(%q) = %v, want %v", tc.arg, got, tc.want)
		}
	}
}
