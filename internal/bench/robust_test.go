package bench

import (
	"strings"
	"testing"
)

func TestRobustnessExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("instance sweeps skipped in -short mode")
	}
	rows, err := RobustnessExperiment(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RobustRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if !r.Complete {
			t.Errorf("%s: incomplete comparison", r.Name)
		}
		// SC ⊆ RA: SC-unsafe must imply RA-unsafe.
		if r.SCUnsafe && !r.RAUnsafe {
			t.Errorf("%s: SC violation invisible under RA", r.Name)
		}
	}
	// The §1 robustness benchmarks are exactly the RA-only violations.
	for _, weak := range []string{"sb-litmus", "peterson-ra", "dekker-ra", "lamport-2-ra", "iriw"} {
		if !byName[weak].Weak() {
			t.Errorf("%s should be non-robust (RA-only violation): %+v", weak, byName[weak])
		}
	}
	for _, robust := range []string{"mp-litmus", "dekker-fences", "spinlock-cas", "ticketlock", "treiber-push", "wrc-causality"} {
		if byName[robust].Weak() {
			t.Errorf("%s should not exhibit weak behaviour: %+v", robust, byName[robust])
		}
	}
	s := RobustTable(rows).String()
	if !strings.Contains(s, "WEAK") || !strings.Contains(s, "robust here") {
		t.Errorf("table rendering broken:\n%s", s)
	}
}
