package bench

import (
	"strings"
	"testing"
)

func TestBudgetAblation(t *testing.T) {
	rows, err := BudgetAblation()
	if err != nil {
		t.Fatal(err)
	}
	// Verdicts must be stable per benchmark across budgets; states must not
	// shrink as the budget widens.
	byName := map[string][]BudgetRow{}
	for _, r := range rows {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for name, rs := range byName {
		for i := 1; i < len(rs); i++ {
			if rs[i].Unsafe != rs[0].Unsafe {
				t.Errorf("%s: verdict changed at extra=%d", name, rs[i].Extra)
			}
			if !rs[i].Unsafe && rs[i].Macro < rs[i-1].Macro {
				t.Errorf("%s: macro states shrank with a wider budget: %d -> %d",
					name, rs[i-1].Macro, rs[i].Macro)
			}
		}
	}
	if s := BudgetTable(rows).String(); !strings.Contains(s, "extra slots") {
		t.Error("table broken")
	}
}
