package paramra_test

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startRaserved boots the built raserved binary on an ephemeral port and
// returns its base URL, the running command, and a channel with its final
// combined output.
func startRaserved(t *testing.T, extraArgs ...string) (base string, cmd *exec.Cmd, done chan string) {
	t.Helper()
	dir := buildTools(t)
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extraArgs...)
	cmd = exec.Command(filepath.Join(dir, "raserved"), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// First line announces the bound address; everything after is collected
	// for the shutdown assertions.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		t.Fatalf("raserved produced no output: %v", sc.Err())
	}
	first := sc.Text()
	const marker = "listening on "
	i := strings.Index(first, marker)
	if i < 0 {
		cmd.Process.Kill()
		t.Fatalf("unexpected first line: %q", first)
	}
	base = "http://" + strings.TrimSpace(first[i+len(marker):])

	done = make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
		done <- rest.String()
	}()
	t.Cleanup(func() { cmd.Process.Kill() })
	return base, cmd, done
}

// TestServedSoakEndToEnd is the full-system check of the service: boot the
// real raserved binary, run the real soak harness against it (verdict
// byte-comparison, error probes, goroutine-leak check, /metrics validation),
// then SIGTERM the server and require a clean drain with exit code 0.
func TestServedSoakEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	dir := buildTools(t)
	base, cmd, done := startRaserved(t)

	soak := exec.Command(filepath.Join(dir, "soak"),
		"-addr", base,
		"-corpus", filepath.Join("testdata", "systems"),
		"-duration", "2s",
		"-concurrency", "4",
		"-check-metrics",
	)
	out, err := soak.CombinedOutput()
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "soak: PASS") {
		t.Errorf("soak output missing PASS line:\n%s", out)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	werr := cmd.Wait()
	select {
	case rest := <-done:
		if !strings.Contains(rest, "drained cleanly") {
			t.Errorf("shutdown output missing the clean-drain line:\n%s", rest)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("raserved did not exit after SIGTERM")
	}
	if werr != nil {
		t.Errorf("raserved exit after SIGTERM: %v (want code 0)", werr)
	}
}

// TestCLIsRejectNegativeKnobs pins that every CLI front end runs the strict
// Options.Validate and dies with exit 2 naming the offending field, instead
// of the library's silent clamp.
func TestCLIsRejectNegativeKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	path := writeTemp(t, "pc.ra", cliProdCons)
	cases := []struct {
		tool  string
		args  []string
		field string
	}{
		{"raverify", []string{"-max-states=-1", path}, "MaxMacroStates"},
		{"raverify", []string{"-j=-2", path}, "Parallelism"},
		{"raexplore", []string{"-max-states=-1", path}, "MaxStates"},
		{"radatalog", []string{"-max-skeletons=-1", path}, "MaxSkeletons"},
		{"ratqbf", []string{"-j=-1", "-random"}, "Parallelism"},
	}
	for _, tc := range cases {
		out, code := runTool(t, tc.tool, tc.args...)
		if code != 2 || !strings.Contains(out, tc.field) {
			t.Errorf("%s %v: code=%d out=%q, want exit 2 naming %s", tc.tool, tc.args, code, out, tc.field)
		}
	}
}

// TestServedRejectsUsageErrors pins the usage exit code.
func TestServedRejectsUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	out, code := runTool(t, "raserved", "positional-arg-not-allowed")
	if code != 2 || !strings.Contains(out, "usage") {
		t.Errorf("usage error: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "soak")
	if code != 2 || !strings.Contains(out, "usage") {
		t.Errorf("soak usage error: code=%d out=%s", code, out)
	}
}
