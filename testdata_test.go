package paramra_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paramra"
)

// expected verdicts for the shipped example systems (first line of each
// file documents them).
var testdataVerdicts = map[string]bool{
	"prodcons.ra": true,
	"mp.ra":       false,
	"peterson.ra": true,
	"chain.ra":    true,
	"barrier.ra":  false,
	"spinlock.ra": false,
}

// TestShippedSystems parses and verifies every .ra file under
// testdata/systems, checking the documented verdict.
func TestShippedSystems(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "systems"))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".ra") {
			continue
		}
		seen++
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", name))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want, known := testdataVerdicts[name]
			if !known {
				t.Fatalf("no expected verdict recorded for %s — update testdataVerdicts", name)
			}
			res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !res.Unsafe && !res.Complete {
				t.Fatal("incomplete")
			}
			if res.Unsafe != want {
				t.Errorf("verdict = %v, want %v", res.Unsafe, want)
			}
			// Round trip through the printer.
			if _, err := paramra.Parse(paramra.Format(sys)); err != nil {
				t.Errorf("formatted output does not re-parse: %v", err)
			}
		})
	}
	if seen != len(testdataVerdicts) {
		t.Errorf("found %d .ra files, expected %d", seen, len(testdataVerdicts))
	}
}

// TestShippedSystemsSliceDifferential verifies that the slicer preserves the
// parameterized verdict on every shipped example system.
func TestShippedSystemsSliceDifferential(t *testing.T) {
	for name, want := range testdataVerdicts {
		t.Run(name, func(t *testing.T) {
			sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", name))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			sliced, _ := paramra.Slice(sys)
			res, err := paramra.Verify(context.Background(), sliced, paramra.Options{})
			if err != nil {
				t.Fatalf("verify sliced: %v", err)
			}
			if res.Unsafe != want {
				t.Errorf("sliced verdict = %v, want %v (slicing must preserve verdicts)", res.Unsafe, want)
			}
		})
	}
}
