package paramra_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"paramra"
)

// TestOptionsNormalization pins the contract that negative numeric options
// behave exactly like their zero (default) values, identically across all
// entry points and backends: a caller computing caps (e.g. remaining budget
// arithmetic going negative) must not flip a backend into a different regime.
func TestOptionsNormalization(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Each variant must yield the same verdicts as the baseline value 0.
	// 1 is included to witness that the fields are not simply ignored
	// (Parallelism 1 stays deterministic; MaxStates 1 truncates).
	for _, par := range []int{0, -1, 1} {
		for _, ms := range []int{0, -1} {
			opts := paramra.Options{Parallelism: par, MaxStates: ms, MaxMacroStates: ms, MaxSkeletons: ms}

			res, err := paramra.Verify(ctx, sys, opts)
			if err != nil {
				t.Fatalf("Verify(par=%d, max=%d): %v", par, ms, err)
			}
			if !res.Unsafe || !res.Complete {
				t.Errorf("Verify(par=%d, max=%d) = unsafe=%v complete=%v, want unsafe complete", par, ms, res.Unsafe, res.Complete)
			}

			dl, err := paramra.Verify(ctx, sys, paramra.Options{Datalog: true, Parallelism: par, MaxSkeletons: ms})
			if err != nil {
				t.Fatalf("Verify/datalog(par=%d, max=%d): %v", par, ms, err)
			}
			if !dl.Unsafe || !dl.Complete {
				t.Errorf("Verify/datalog(par=%d, max=%d) = unsafe=%v complete=%v, want unsafe complete", par, ms, dl.Unsafe, dl.Complete)
			}

			inst, err := paramra.VerifyInstance(ctx, sys, 1, opts)
			if err != nil {
				t.Fatalf("VerifyInstance(par=%d, max=%d): %v", par, ms, err)
			}
			if !inst.Unsafe {
				t.Errorf("VerifyInstance(par=%d, max=%d) not unsafe", par, ms)
			}

			n, _, err := paramra.ConfirmViolation(ctx, sys, res, 4, opts)
			if err != nil {
				t.Fatalf("ConfirmViolation(par=%d, max=%d): %v", par, ms, err)
			}
			if n != 1 {
				t.Errorf("ConfirmViolation(par=%d, max=%d) = %d env threads, want 1", par, ms, n)
			}

			dr, err := paramra.FindDeadlocks(ctx, sys, 1, opts)
			if err != nil {
				t.Fatalf("FindDeadlocks(par=%d, max=%d): %v", par, ms, err)
			}
			if !dr.Complete {
				t.Errorf("FindDeadlocks(par=%d, max=%d) incomplete", par, ms)
			}
		}
	}

	// MaxStates: 1 genuinely truncates — proves the clamp maps -1 to
	// "unlimited", not to "tiny cap".
	inst, err := paramra.VerifyInstance(ctx, sys, 1, paramra.Options{MaxStates: 1})
	if err != nil {
		t.Fatalf("VerifyInstance(MaxStates=1): %v", err)
	}
	if inst.Complete {
		t.Error("VerifyInstance(MaxStates=1) reported a complete search of a >1-state space")
	}
}

// TestOptionsValidate pins the strict counterpart of the clamp: Validate
// names every out-of-range field with a typed *OptionError, accepts every
// in-range combination, and agrees with normalized() about which fields are
// range-limited (a knob Validate rejects must be one the entry points would
// have clamped, and vice versa).
func TestOptionsValidate(t *testing.T) {
	if err := (paramra.Options{}).Validate(); err != nil {
		t.Errorf("zero Options invalid: %v", err)
	}
	ok := paramra.Options{MaxStates: 10, MaxMacroStates: 1, MaxSkeletons: 5, Parallelism: 8, UnrollDis: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid Options rejected: %v", err)
	}

	cases := []struct {
		field string
		opts  paramra.Options
	}{
		{"MaxMacroStates", paramra.Options{MaxMacroStates: -1}},
		{"MaxStates", paramra.Options{MaxStates: -7}},
		{"MaxSkeletons", paramra.Options{MaxSkeletons: -2}},
		{"Parallelism", paramra.Options{Parallelism: -4}},
		{"UnrollDis", paramra.Options{UnrollDis: -3}},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if err == nil {
			t.Errorf("%s: negative value accepted", c.field)
			continue
		}
		var oe *paramra.OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %T is not a *OptionError", c.field, err)
			continue
		}
		if oe.Field != c.field {
			t.Errorf("Field = %q, want %q", oe.Field, c.field)
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("message %q does not name the field %q", err.Error(), c.field)
		}
	}

	// Several violations are all reported, each findable by field name.
	err := paramra.Options{MaxStates: -1, Parallelism: -1}.Validate()
	if err == nil {
		t.Fatal("two violations accepted")
	}
	for _, f := range []string{"MaxStates", "Parallelism"} {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("joined error %q missing field %s", err.Error(), f)
		}
	}
}
