// Package paramra is a from-scratch implementation of
//
//	Krishna, Godbole, Meyer, Chakraborty:
//	"Parameterized Verification under Release Acquire is PSPACE-complete",
//	PODC 2022.
//
// It decides safety for parameterized concurrent programs under the C11
// release-acquire (RA) memory model: systems with an unbounded number of
// identical, CAS-free environment threads plus finitely many loop-free
// distinguished threads — the class env(nocas) ∥ dis_1(acyc) ∥ … ∥
// dis_n(acyc) for which the paper proves the problem PSPACE-complete.
//
// The facade in this package wraps the building blocks in internal/:
//
//	internal/lang        the Com while-language (parser, CFGs, classification)
//	internal/ra          the concrete RA operational semantics for fixed instances
//	internal/simplified  the paper's simplified semantics and the verifier
//	internal/datalog     a Datalog engine with Cache Datalog and linear translation
//	internal/encode      the makeP encoding into (Cache) Datalog
//	internal/depgraph    dependency graphs, compaction, env-thread-count bounds
//	internal/tqbf        TQBF and the PSPACE-hardness reduction (Figure 6)
//	internal/cm          counter machines and the Theorem 1.1 construction
//	internal/bench       the benchmark corpus and experiment harness
//
// # Quick start
//
//	sys, err := paramra.Parse(src)          // concrete syntax, see below
//	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
//	if res.Unsafe { ... }
//
// Every entry point takes a context; cancellation or a deadline stops the
// search and returns the partial Result (Complete = false) together with
// the context error. Options.Parallelism sets the worker count (0 =
// GOMAXPROCS) and Options.Progress streams periodic Stats snapshots.
// Verdicts, witnesses and fixpoint statistics are identical for every
// worker count (see internal/engine).
//
// # Result and Stats fields by backend
//
// Verify has three backends — the simplified-semantics fixpoint (default),
// the Datalog encoding (Options.Datalog), and the concrete RA explorer
// (VerifyInstance / ConfirmViolation, whose InstanceResult mirrors the
// shared Result fields). Each fills a different slice of Result and Stats:
//
//	field                  fixpoint  Datalog  concrete
//	Result.Unsafe             ✓         ✓        ✓
//	Result.Complete           ✓         ✓        ✓
//	Result.Class              ✓         ✓        —
//	Result.EnvThreadBound     ✓         —        —   (-1 when absent)
//	Result.Graph              ✓         —        —   (unsafe only)
//	Result.Witness            ✓         —        ✓   (unsafe only)
//	Stats.MacroStates         ✓         —        —
//	Stats.DisTransitions      ✓         —        —
//	Stats.EnvConfigs          ✓         —        —
//	Stats.EnvMsgs             ✓         —        —
//	Stats.SaturationSteps     ✓         —        —
//	Stats.States              —         —        ✓
//	Stats.Transitions         —         —        ✓
//	Stats.Skeletons           —         ✓        —
//	Stats.DatalogFacts        —         ✓        —
//	Stats.DatalogRules        —         ✓        —
//	Stats.FixpointRounds      —         ✓        —
//	Stats.DatalogAtoms        —         ✓        —
//	Stats.DedupHits           ✓         —        ✓
//	Stats.PeakFrontier        ✓         —        ✓
//	Stats.Wall                ✓         ✓        ✓
//	Stats.Workers             ✓         ✓        ✓
//
// Systems are written in a small concrete syntax:
//
//	system prodcons {
//	  vars x y
//	  domain 4
//	  env producer
//	  dis consumer
//	}
//
//	thread producer {
//	  regs r
//	  r = load y; assume r == 1
//	  store x 2
//	}
//
//	thread consumer {
//	  regs s
//	  store y 1
//	  s = load x; assume s == 2
//	  assert false
//	}
//
// `env` names the program run by unboundedly many environment threads; each
// `dis` clause adds one distinguished thread. Verification asks whether any
// instance (any number of env threads) can execute `assert false`.
package paramra
