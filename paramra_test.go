package paramra_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paramra"
)

const prodcons = `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`

func TestVerifyUnsafe(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsafe || !res.Complete {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Class.String() != "env(nocas, acyc) || dis_1(nocas, acyc)" {
		t.Errorf("class = %s", res.Class)
	}
	if res.EnvThreadBound != 1 {
		t.Errorf("env thread bound = %d, want 1", res.EnvThreadBound)
	}
	if res.Graph == nil || len(res.Witness) != 1 {
		t.Errorf("missing violation artifacts: graph=%v witness=%v", res.Graph, res.Witness)
	}
}

func TestVerifySafe(t *testing.T) {
	sys, err := paramra.Parse(`
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsafe {
		t.Fatal("MP must be safe")
	}
	if res.EnvThreadBound != -1 || res.Graph != nil {
		t.Error("safe result should carry no violation artifacts")
	}
}

func TestVerifyDatalogBackendAgrees(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{Datalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsafe {
		t.Fatal("Datalog backend disagrees with fixpoint")
	}
	if _, err := paramra.Verify(context.Background(), sys, paramra.Options{Datalog: true, Goal: &paramra.Goal{Var: "x", Val: 2}}); err == nil {
		t.Error("Datalog backend should reject goal queries")
	}
}

func TestVerifyGoal(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{Goal: &paramra.Goal{Var: "x", Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsafe {
		t.Error("message (x,2) should be generatable")
	}
	res, err = paramra.Verify(context.Background(), sys, paramra.Options{Goal: &paramra.Goal{Var: "x", Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsafe {
		t.Error("message (x,3) should not be generatable")
	}
	if _, err := paramra.Verify(context.Background(), sys, paramra.Options{Goal: &paramra.Goal{Var: "zz", Val: 0}}); err == nil {
		t.Error("unknown goal variable accepted")
	}
}

func TestVerifyUnrollDis(t *testing.T) {
	sys, err := paramra.Parse(`
system loopy { vars x; domain 4; env w; dis d }
thread w { regs r; r = load x; store x (r + 1) }
thread d { regs s; while s != 2 { s = load x }; assert false }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paramra.Verify(context.Background(), sys, paramra.Options{}); !errors.Is(err, paramra.ErrDisCyclic) {
		t.Fatalf("looping dis should be rejected without UnrollDis: %v", err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{UnrollDis: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsafe || !res.Underapprox {
		t.Errorf("unrolled verification: %+v", res)
	}
}

func TestVerifyEnvCASRejected(t *testing.T) {
	sys, err := paramra.Parse(`
system bad { vars x; domain 2; env e }
thread e { cas x 0 1 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paramra.Verify(context.Background(), sys, paramra.Options{}); !errors.Is(err, paramra.ErrEnvCAS) {
		t.Fatalf("env CAS should be rejected: %v", err)
	}
}

func TestVerifyInstance(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.VerifyInstance(context.Background(), sys, 0, paramra.Options{MaxStates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsafe {
		t.Error("0 env threads: safe expected")
	}
	res, err = paramra.VerifyInstance(context.Background(), sys, 1, paramra.Options{MaxStates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsafe {
		t.Error("1 env thread: unsafe expected")
	}
	if !strings.Contains(res.Witness, "assert false") {
		t.Errorf("witness missing assert:\n%s", res.Witness)
	}
}

func TestConfirmViolation(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, witness, err := paramra.ConfirmViolation(context.Background(), sys, res, 4, paramra.Options{MaxStates: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("confirmed at n=%d, want 1", n)
	}
	if !strings.Contains(witness, "assert false") {
		t.Errorf("witness missing assert:\n%s", witness)
	}
	// Safe results are rejected.
	safeSys, err := paramra.Parse(`
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`)
	if err != nil {
		t.Fatal(err)
	}
	safeRes, err := paramra.Verify(context.Background(), safeSys, paramra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := paramra.ConfirmViolation(context.Background(), safeSys, safeRes, 2, paramra.Options{MaxStates: 100_000}); err == nil {
		t.Error("safe result accepted for confirmation")
	}
}

func TestParseFileAndFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.ra")
	if err := os.WriteFile(path, []byte(prodcons), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := paramra.ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "prodcons" {
		t.Errorf("name = %s", sys.Name)
	}
	if _, err := paramra.ParseFile(filepath.Join(dir, "missing.ra")); err == nil {
		t.Error("missing file accepted")
	}
	formatted := paramra.Format(sys)
	sys2, err := paramra.Parse(formatted)
	if err != nil {
		t.Fatalf("formatted output does not re-parse: %v\n%s", err, formatted)
	}
	if paramra.Format(sys2) != formatted {
		t.Error("format not idempotent")
	}
}

func TestFindDeadlocksFacade(t *testing.T) {
	sys, err := paramra.Parse(`
system stuck { vars go; domain 2; env waiter }
thread waiter { regs g; g = load go; assume g == 1 }
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := paramra.FindDeadlocks(context.Background(), sys, 1, paramra.Options{MaxStates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlocks == 0 || !rep.Complete {
		t.Errorf("expected deadlocks: %+v", rep)
	}
	okSys, err := paramra.Parse(`
system fine { vars x; domain 2; dis t }
thread t { store x 1 }
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = paramra.FindDeadlocks(context.Background(), okSys, 0, paramra.Options{MaxStates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlocks != 0 || rep.Terminal == 0 {
		t.Errorf("straight-line program misclassified: %+v", rep)
	}
}

func TestInventoryFacade(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := paramra.Inventory(context.Background(), sys, paramra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantX := []int{0, 2} // init and the producer's store
	gotX := inv["x"]
	if len(gotX) != len(wantX) || gotX[0] != wantX[0] || gotX[1] != wantX[1] {
		t.Errorf("inventory[x] = %v, want %v", gotX, wantX)
	}
	wantY := []int{0, 1}
	gotY := inv["y"]
	if len(gotY) != len(wantY) || gotY[0] != wantY[0] || gotY[1] != wantY[1] {
		t.Errorf("inventory[y] = %v, want %v", gotY, wantY)
	}
}

func TestClassifyFacade(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	c := paramra.Classify(sys)
	if !c.Decidable() {
		t.Errorf("prodcons should be decidable: %s", c)
	}
	u := paramra.Unroll(sys, 2)
	if u == sys {
		t.Error("Unroll should copy")
	}
}
