package paramra

import (
	"context"
	"strings"
	"testing"
)

const prepassSafeSrc = `
system vsafe { vars f; domain 4; env w; dis c }
thread w { store f 1 }
thread c { regs a; a = load f; assume a == 2; assert false }
`

const prepassUnsafeSrc = `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`

func TestVerifyPrepassSafe(t *testing.T) {
	sys, err := Parse(prepassSafeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(context.Background(), sys, Options{Prepass: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsafe || !res.Complete {
		t.Fatalf("unsafe=%v complete=%v, want SAFE complete", res.Unsafe, res.Complete)
	}
	if res.DecidedBy != "prepass" {
		t.Fatalf("DecidedBy = %q, want prepass (%s)", res.DecidedBy, res.PrepassReason)
	}
}

func TestVerifyPrepassUnsafe(t *testing.T) {
	sys, err := Parse(prepassUnsafeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(context.Background(), sys, Options{Prepass: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsafe || !res.Complete {
		t.Fatalf("unsafe=%v complete=%v, want UNSAFE complete", res.Unsafe, res.Complete)
	}
	if res.DecidedBy != "prepass" {
		t.Fatalf("DecidedBy = %q, want prepass (%s)", res.DecidedBy, res.PrepassReason)
	}
	if res.EnvThreadBound != 1 {
		t.Fatalf("EnvThreadBound = %d, want 1", res.EnvThreadBound)
	}
	if len(res.Witness) == 0 {
		t.Fatal("prepass UNSAFE must carry the confirming interleaving")
	}
}

func TestVerifyPrepassFallsThrough(t *testing.T) {
	// mp is SAFE by ordering only: the prepass cannot decide it, and the
	// fixpoint backend must still produce the verdict.
	sys, err := Parse(`
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(context.Background(), sys, Options{Prepass: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsafe {
		t.Fatal("mp is SAFE")
	}
	if res.DecidedBy != "fixpoint" {
		t.Fatalf("DecidedBy = %q, want fixpoint", res.DecidedBy)
	}
	if res.PrepassReason == "" {
		t.Fatal("inconclusive prepass must leave its reason in the result")
	}
	if res.Stats.MacroStates == 0 {
		t.Fatal("fallthrough must actually run the search")
	}
}

func TestPrepassStandalone(t *testing.T) {
	sys, err := Parse(prepassSafeSrc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Prepass(context.Background(), sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != PrepassSafe {
		t.Fatalf("verdict = %s (%s)", out.Verdict, out.Reason)
	}
	// Goal mode: value 3 is unwritable, value 1 is written.
	out, err = Prepass(context.Background(), sys, Options{Goal: &Goal{Var: "f", Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != PrepassSafe {
		t.Fatalf("goal 3: verdict = %s (%s)", out.Verdict, out.Reason)
	}
	out, err = Prepass(context.Background(), sys, Options{Goal: &Goal{Var: "f", Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != PrepassInconclusive {
		t.Fatalf("goal 1: verdict = %s, want INCONCLUSIVE", out.Verdict)
	}
	if !strings.Contains(out.Reason, "goal") {
		t.Fatalf("reason should mention the goal: %q", out.Reason)
	}
}

func TestVerifyPrepassAgreesWithFixpoint(t *testing.T) {
	// Same systems, prepass off: verdicts must match.
	for _, src := range []string{prepassSafeSrc, prepassUnsafeSrc} {
		sys, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := Verify(context.Background(), sys, Options{Prepass: true})
		if err != nil {
			t.Fatal(err)
		}
		fix, err := Verify(context.Background(), sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pre.Unsafe != fix.Unsafe {
			t.Fatalf("%s: prepass says unsafe=%v, fixpoint says unsafe=%v",
				sys.Name, pre.Unsafe, fix.Unsafe)
		}
	}
}
