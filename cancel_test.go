package paramra_test

import (
	"context"
	"errors"
	"testing"

	"paramra"
)

// TestCancellationErrorShape pins the uniform cancellation contract of every
// backend: a cancelled context yields an error wrapping context.Canceled —
// never a spurious SAFE verdict — with the incomplete flag set and
// Stats.Wall populated.
func TestCancellationErrorShape(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("fixpoint", func(t *testing.T) {
		res, err := paramra.Verify(ctx, sys, paramra.Options{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res.Complete {
			t.Error("cancelled run reported a complete verdict")
		}
		if res.Stats.Wall <= 0 {
			t.Errorf("Stats.Wall = %v, want > 0", res.Stats.Wall)
		}
	})

	t.Run("datalog", func(t *testing.T) {
		res, err := paramra.Verify(ctx, sys, paramra.Options{Datalog: true})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res.Complete {
			t.Error("cancelled run reported a complete verdict")
		}
		if res.Stats.Wall <= 0 {
			t.Errorf("Stats.Wall = %v, want > 0", res.Stats.Wall)
		}
	})

	t.Run("concrete", func(t *testing.T) {
		res, err := paramra.VerifyInstance(ctx, sys, 1, paramra.Options{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res.Complete {
			t.Error("cancelled run reported a complete verdict")
		}
		if res.Stats.Wall <= 0 {
			t.Errorf("Stats.Wall = %v, want > 0", res.Stats.Wall)
		}
	})

	t.Run("confirm", func(t *testing.T) {
		// ConfirmViolation needs an UNSAFE result to confirm; compute it
		// uncancelled, then cancel the confirmation itself.
		res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
		if err != nil || !res.Unsafe {
			t.Fatalf("setup: unsafe=%v err=%v", res.Unsafe, err)
		}
		_, _, err = paramra.ConfirmViolation(ctx, sys, res, 4, paramra.Options{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		var ce *paramra.ConfirmError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %T, want *ConfirmError", err)
		}
	})

	t.Run("deadlocks", func(t *testing.T) {
		_, err := paramra.FindDeadlocks(ctx, sys, 1, paramra.Options{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}
