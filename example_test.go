package paramra_test

import (
	"context"
	"fmt"
	"log"

	"paramra"
)

// ExampleVerify decides parameterized safety for the paper's
// producer-consumer system: no matter how many producers run, can the
// consumer observe the forwarded value?
func ExampleVerify() {
	sys, err := paramra.Parse(`
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unsafe:", res.Unsafe)
	fmt.Println("env threads sufficient:", res.EnvThreadBound)
	// Output:
	// unsafe: true
	// env threads sufficient: 1
}

// ExampleClassify shows the paper-notation system classification.
func ExampleClassify() {
	sys, err := paramra.Parse(`
system s { vars x; domain 2; env worker; dis boss }
thread worker { regs r; loop { r = load x } }
thread boss { cas x 0 1 }
`)
	if err != nil {
		log.Fatal(err)
	}
	c := paramra.Classify(sys)
	fmt.Println(c)
	fmt.Println("decidable:", c.Decidable())
	// Output:
	// env(nocas) || dis_1(acyc)
	// decidable: true
}

// ExampleVerifyInstance explores one fixed instance under the concrete RA
// semantics of Figure 2.
func ExampleVerifyInstance() {
	sys, err := paramra.Parse(`
system mp { vars x y; domain 2; dis t1; dis t2 }
thread t1 { store x 1; store y 1 }
thread t2 { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := paramra.VerifyInstance(context.Background(), sys, 0, paramra.Options{MaxStates: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("message-passing weak outcome reachable:", res.Unsafe)
	// Output:
	// message-passing weak outcome reachable: false
}

// ExampleConfirmViolation cross-validates a parameterized violation with a
// concrete instance and its interleaving witness.
func ExampleConfirmViolation() {
	sys, err := paramra.Parse(`
system chain { vars x; domain 4; env inc; dis watcher }
thread inc { regs r; r = load x; store x (r + 1) }
thread watcher { regs s; s = load x; assume s == 2; assert false }
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	n, _, err := paramra.ConfirmViolation(context.Background(), sys, res, 8, paramra.Options{MaxStates: 500000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("confirmed with env threads:", n)
	// Output:
	// confirmed with env threads: 2
}
