package paramra_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"paramra"
	"paramra/internal/lang"
)

// TestParallelDeterministicVerdictsTestdata is the stress form of the
// determinism contract: every shipped system, verified repeatedly at
// Parallelism 8, must produce the same verdict, stats, witness and §4.3
// env-thread bound as a 1-worker run. Under -race this also exercises the
// engine's synchronization. `go test -short` runs one iteration.
func TestParallelDeterministicVerdictsTestdata(t *testing.T) {
	iters := 5
	if testing.Short() {
		iters = 1
	}
	for name := range testdataVerdicts {
		t.Run(name, func(t *testing.T) {
			sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", name))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			base, err := paramra.Verify(context.Background(), sys, paramra.Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("verify j=1: %v", err)
			}
			for i := 0; i < iters; i++ {
				res, err := paramra.Verify(context.Background(), sys, paramra.Options{Parallelism: 8})
				if err != nil {
					t.Fatalf("iter %d: verify j=8: %v", i, err)
				}
				if res.Unsafe != base.Unsafe || res.Complete != base.Complete {
					t.Fatalf("iter %d: verdict (%v,%v) vs (%v,%v)",
						i, res.Unsafe, res.Complete, base.Unsafe, base.Complete)
				}
				if res.EnvThreadBound != base.EnvThreadBound {
					t.Errorf("iter %d: env-thread bound %d vs %d",
						i, res.EnvThreadBound, base.EnvThreadBound)
				}
				if !reflect.DeepEqual(res.Witness, base.Witness) {
					t.Errorf("iter %d: witness %v vs %v", i, res.Witness, base.Witness)
				}
				if got, want := fixpointStats(res.Stats), fixpointStats(base.Stats); got != want {
					t.Errorf("iter %d: stats %+v vs %+v", i, got, want)
				}
			}
		})
	}
}

// fixpointStats projects the deterministic fixpoint counter group (the
// engine group — wall time, dedup hits — legitimately varies run to run;
// dedup hits only via which side of a race pays the counter, never the
// admitted set).
func fixpointStats(s paramra.Stats) [5]int {
	return [5]int{s.MacroStates, s.DisTransitions, s.EnvConfigs, s.EnvMsgs, s.SaturationSteps}
}

// TestVerifyContextCancellation: a cancelled context surfaces as the
// returned error with a partial, incomplete result.
func TestVerifyContextCancellation(t *testing.T) {
	sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", "peterson.ra"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := paramra.Verify(ctx, sys, paramra.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Complete {
		t.Error("cancelled run reported complete")
	}
}

// TestConfirmViolationTypedErrors pins the *ConfirmError contract: which
// variant is returned, its fields, and the exact (pre-existing) messages.
func TestConfirmViolationTypedErrors(t *testing.T) {
	ctx := context.Background()

	// A safe system cannot be confirmed: every instance search completes
	// without a violation, so the error blames maxN, not the state cap.
	safeSys, err := paramra.ParseFile(filepath.Join("testdata", "systems", "mp.ra"))
	if err != nil {
		t.Fatal(err)
	}
	res := paramra.Result{Unsafe: true, EnvThreadBound: 2}
	_, _, err = paramra.ConfirmViolation(ctx, safeSys, res, 4, paramra.Options{MaxStates: 100_000})
	var ce *paramra.ConfirmError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *ConfirmError", err, err)
	}
	if ce.BoundTried != 2 || ce.StateCapHit {
		t.Errorf("ConfirmError = %+v, want BoundTried=2 StateCapHit=false", ce)
	}
	if want := "paramra: no confirmation within 2 env threads (raise maxN)"; err.Error() != want {
		t.Errorf("message %q, want %q", err.Error(), want)
	}

	// With a tiny state cap the searches are truncated, so the error blames
	// the cap.
	_, _, err = paramra.ConfirmViolation(ctx, safeSys, res, 4, paramra.Options{MaxStates: 2})
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *ConfirmError", err, err)
	}
	if !ce.StateCapHit {
		t.Errorf("ConfirmError = %+v, want StateCapHit=true", ce)
	}
	if want := "paramra: no confirmation within 2 env threads (state cap hit; raise maxStates)"; err.Error() != want {
		t.Errorf("message %q, want %q", err.Error(), want)
	}

	// Not a violation at all.
	if _, _, err := paramra.ConfirmViolation(ctx, safeSys, paramra.Result{}, 4, paramra.Options{}); err == nil || errors.As(err, &ce) {
		t.Errorf("non-violation: err = %v, want a plain error", err)
	}
}

// TestParseFileErrorShapes pins the error format of ParseFile: syntax
// errors join the path with no space ("file:line:col: msg"), every other
// error keeps the conventional "path: msg" shape, and both remain
// errors.As/Is-transparent.
func TestParseFileErrorShapes(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.ra")
	if err := os.WriteFile(bad, []byte("system broken {"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := paramra.ParseFile(bad)
	if err == nil {
		t.Fatal("expected syntax error")
	}
	var syn *lang.SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("syntax error not errors.As-reachable through %T: %v", err, err)
	}
	if !strings.HasPrefix(err.Error(), bad+":") || strings.HasPrefix(err.Error(), bad+": ") {
		t.Errorf("syntax error %q, want %q prefix with no space (file:line:col shape)", err.Error(), bad+":")
	}

	// Semantic (non-syntax) errors get the conventional ": " separator.
	dup := filepath.Join(dir, "dup.ra")
	if err := os.WriteFile(dup, []byte(`
system dup { vars x x; domain 2; env p }
thread p { store x 1 }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = paramra.ParseFile(dup)
	if err == nil {
		t.Fatal("expected duplicate-variable error")
	}
	if errors.As(err, &syn) {
		t.Fatalf("semantic error unexpectedly a SyntaxError: %v", err)
	}
	if !strings.HasPrefix(err.Error(), dup+": ") {
		t.Errorf("semantic error %q, want %q prefix", err.Error(), dup+": ")
	}

	// Missing files surface the os error unchanged.
	if _, err := paramra.ParseFile(filepath.Join(dir, "absent.ra")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file err = %v, want os.ErrNotExist", err)
	}
}

// BenchmarkVerifyParallel measures Verify wall time per worker count over
// the shipped systems (the BENCH_parallel.json baseline is generated from
// the same engine via `rabench parallel`).
func BenchmarkVerifyParallel(b *testing.B) {
	for _, name := range []string{"peterson.ra", "prodcons.ra", "spinlock.ra"} {
		sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", name))
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range []int{1, 2, 4, 8} {
			b.Run(strings.TrimSuffix(name, ".ra")+"/j="+itoa(j), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := paramra.Verify(context.Background(), sys, paramra.Options{Parallelism: j}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVerifyInstanceParallel measures the concrete explorer on the
// free-order engine per worker count.
func BenchmarkVerifyInstanceParallel(b *testing.B) {
	sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", "mp.ra"))
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run("mp/env=2/j="+itoa(j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := paramra.VerifyInstance(context.Background(), sys, 2, paramra.Options{
					MaxStates: 500_000, Parallelism: j,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
