// Command raserved is the verification service: a long-running HTTP/JSON
// server exposing the paramra entry points over the typed wire API of
// internal/serve.
//
// Usage:
//
//	raserved [flags]
//
// The server prints "raserved: listening on ADDR" once bound (use -addr
// 127.0.0.1:0 to pick a free port), serves until SIGINT/SIGTERM, then
// drains gracefully: readiness flips to 503, new verification work is
// refused, and in-flight requests get -grace to finish. Exit code 0 means a
// clean drain.
//
// Every request is traced: X-Trace-Id propagates (or is generated) into the
// response header, envelopes, access log and all verification spans;
// requests slower than -slow-threshold land in /debug/slow with per-phase
// span breakdowns; -trace-dir persists raw JSONL traces for `rabench
// report`.
//
// Endpoints, budgets and error mapping are documented in internal/serve.
// Metrics are served on the main listener at /metrics (Prometheus text),
// /metrics.json and /debug/vars; -pprof-addr starts a separate
// net/http/pprof listener so profiling traffic never competes with
// verification traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paramra/internal/obs"
	"paramra/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address for the service")
		grace         = flag.Duration("grace", 30*time.Second, "drain deadline for in-flight requests on shutdown")
		maxBody       = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		maxInflight   = flag.Int("max-inflight", 0, "concurrent verification limit (0 = 2×GOMAXPROCS)")
		defaultBudget = flag.Duration("default-budget", 30*time.Second, "verification budget when the request names none (exhaustion → 504)")
		maxBudget     = flag.Duration("max-budget", 2*time.Minute, "cap on client-requested budgets (above → 400)")
		maxStates     = flag.Int("max-states", 2_000_000, "cap on concrete-instance exploration per request")
		maxEnv        = flag.Int("max-env", 16, "cap on env threads for /v1/instance and /v1/deadlocks")
		workers       = flag.Int("j", 0, "default worker goroutines per verification (0 = GOMAXPROCS)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. :6060)")
		metricsOut    = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
		quiet         = flag.Bool("quiet", false, "disable the access log")
		slowThreshold = flag.Duration("slow-threshold", 0, "latency above which a request is captured into /debug/slow (0 = 500ms default)")
		slowRing      = flag.Int("slow-ring", 0, "how many slow requests /debug/slow retains (0 = 32 default)")
		traceDir      = flag.String("trace-dir", "", "persist each request's JSONL trace into this directory (input of `rabench report`)")
		cacheSize     = flag.Int("cache-size", 4096, "in-memory verdict-cache entries, keyed on the canonical system form (0 disables caching)")
		cacheDir      = flag.String("cache-dir", "", "persist cached verdicts (checksummed JSON, survives restarts) in this directory; requires -cache-size > 0")
		cacheDiskMax  = flag.Int64("cache-disk-max-bytes", 0, "total size cap of the -cache-dir layer; LRU entries are evicted past it (0 = 256 MiB default, negative = unbounded)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: raserved [flags]")
		flag.PrintDefaults()
		return 2
	}

	reg := obs.NewRegistry()
	cfg := serve.Config{
		MaxBody:           *maxBody,
		MaxInflight:       *maxInflight,
		DefaultBudget:     *defaultBudget,
		MaxBudget:         *maxBudget,
		MaxStatesCap:      *maxStates,
		MaxEnvThreads:     *maxEnv,
		Parallelism:       *workers,
		Metrics:           reg,
		SlowThreshold:     *slowThreshold,
		SlowRingSize:      *slowRing,
		TraceDir:          *traceDir,
		CacheSize:         *cacheSize,
		CacheDir:          *cacheDir,
		CacheDiskMaxBytes: *cacheDiskMax,
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "raserved:", err)
			return 2
		}
	}
	if *cacheDir != "" {
		if *cacheSize <= 0 {
			fmt.Fprintln(os.Stderr, "raserved: -cache-dir requires -cache-size > 0")
			return 2
		}
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "raserved:", err)
			return 2
		}
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raserved:", err)
		return 2
	}
	// The bound address goes to stdout so scripts (and cmd/soak wrappers)
	// can target an ephemeral port.
	fmt.Printf("raserved: listening on %s\n", ln.Addr())

	if *pprofAddr != "" {
		stop, bound, perr := obs.ServePprof(*pprofAddr)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "raserved:", perr)
			return 2
		}
		defer stop()
		fmt.Printf("raserved: pprof on %s\n", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = srv.Serve(ctx, ln, *grace)

	if *metricsOut != "" {
		if f, ferr := os.Create(*metricsOut); ferr != nil {
			fmt.Fprintln(os.Stderr, "raserved:", ferr)
		} else {
			if werr := reg.WriteJSON(f); werr != nil {
				fmt.Fprintln(os.Stderr, "raserved:", werr)
			}
			_ = f.Close()
		}
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "raserved:", err)
		return 1
	}
	fmt.Println("raserved: drained cleanly")
	return 0
}
