// Command raverify decides parameterized safety under release-acquire for a
// system description file.
//
// Usage:
//
//	raverify [flags] system.ra
//
// The input syntax is documented in the paramra package. The exit code is 0
// for SAFE, 1 for UNSAFE, and 2 on errors. SIGINT (and -timeout) cancel the
// verification cleanly through its context. The shared observability flags
// (-trace-out, -metrics-addr, -metrics-out, -pprof-addr, -cpuprofile,
// -memprofile) record a phase-span trace, expose live metrics, and profile
// the run; see internal/obs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"paramra"
	"paramra/internal/obs"
	"paramra/internal/serve"
)

// jsonReport is the machine-readable output shape (-json).
type jsonReport struct {
	System         string   `json:"system"`
	Class          string   `json:"class"`
	Verdict        string   `json:"verdict"`
	Complete       bool     `json:"complete"`
	Underapprox    bool     `json:"underapprox,omitempty"`
	MacroStates    int      `json:"macroStates"`
	DisTransitions int      `json:"disTransitions"`
	EnvConfigs     int      `json:"envConfigs"`
	EnvMsgs        int      `json:"envMsgs"`
	EnvThreadBound int64    `json:"envThreadBound"`
	Workers        int      `json:"workers,omitempty"`
	WallMS         int64    `json:"wallMs,omitempty"`
	Witness        []string `json:"witness,omitempty"`
	Slice          string   `json:"slice,omitempty"`
	DecidedBy      string   `json:"decidedBy,omitempty"`
	PrepassReason  string   `json:"prepassReason,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		datalogBackend = flag.Bool("datalog", false, "use the makeP→Datalog backend (Theorem 4.1) instead of the fixpoint engine")
		unroll         = flag.Int("unroll", 0, "unroll looping dis threads k times (bounded under-approximation)")
		maxStates      = flag.Int("max-states", 0, "cap on macro states (0 = unlimited)")
		goalVar        = flag.String("goal-var", "", "Message Generation mode: goal variable")
		goalVal        = flag.Int("goal-val", 0, "Message Generation mode: goal value")
		showGraph      = flag.Bool("graph", false, "print the dependency graph of the violation")
		showClass      = flag.Bool("class", false, "print the system class and exit")
		jsonOut        = flag.Bool("json", false, "emit a machine-readable JSON report")
		confirm        = flag.Bool("confirm", false, "on UNSAFE, confirm with a concrete instance and print its interleaving")
		doSlice        = flag.Bool("slice", false, "run the verdict-preserving slicer before verification")
		progress       = flag.Bool("progress", false, "report search progress to stderr while verifying")
		prepass        = flag.Bool("prepass", true, "try the static abstract-interpretation prepass before searching")
		verbose        = flag.Bool("v", false, "print the per-thread classification signature (acyc/nocas)")
	)
	obsf := obs.RegisterFlags(flag.CommandLine)
	obsf.RegisterRunFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: raverify [flags] system.ra")
		flag.PrintDefaults()
		return 2
	}
	ctx, stop := obsf.Context()
	defer stop()
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "raverify:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "raverify:", err)
		}
	}()
	root := sess.Tracer.Start("raverify", nil)
	defer root.End()
	root.SetAttr("file", flag.Arg(0))

	pspan := root.Child("parse")
	sys, err := paramra.ParseFile(flag.Arg(0))
	pspan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "raverify:", err)
		return 2
	}
	if *showClass {
		fmt.Println(paramra.Classify(sys))
		return 0
	}
	var sliceStats paramra.SliceStats
	if *doSlice {
		// The goal variable must survive slicing: the query is about it.
		var keep []string
		if *goalVar != "" {
			keep = append(keep, *goalVar)
		}
		sspan := root.Child("slice")
		sys, sliceStats = paramra.Slice(sys, keep...)
		sspan.End()
	}
	opts := paramra.Options{
		MaxMacroStates: *maxStates,
		UnrollDis:      *unroll,
		Datalog:        *datalogBackend,
		// -graph asks for the violation's dependency graph, an artifact only
		// the fixpoint search produces — it overrides the static fast path.
		Prepass:     *prepass && !*showGraph,
		Parallelism: obsf.Workers,
		Tracer:      sess.Tracer,
		TraceSpan:   root,
		Metrics:     sess.Metrics,
	}
	if *goalVar != "" {
		opts.Goal = &paramra.Goal{Var: *goalVar, Val: *goalVal}
	}
	// Strict validation up front: a typo like -max-states=-1 dies with the
	// offending flag named instead of being silently clamped mid-run.
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "raverify:", err)
		return 2
	}
	if *progress {
		opts.Progress = func(s paramra.Stats) {
			fmt.Fprintf(os.Stderr, "raverify: %d macro states, %d dedup hits, frontier peak %d, %s\n",
				s.MacroStates, s.DedupHits, s.PeakFrontier, s.Wall.Round(time.Millisecond))
		}
	}
	res, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "raverify: interrupted (%v) after %d macro states; verdict unknown\n",
				ctx.Err(), res.Stats.MacroStates)
			return 2
		}
		fmt.Fprintln(os.Stderr, "raverify:", err)
		return 2
	}
	// The verdict spelling is shared with the raserved wire API, so the CLI
	// and the service cannot drift.
	verdict := serve.Verdict(res)
	if *jsonOut {
		rep := jsonReport{
			System: sys.Name, Class: res.Class.String(), Verdict: verdict,
			Slice:    sliceDesc(*doSlice, sliceStats),
			Complete: res.Complete, Underapprox: res.Underapprox,
			MacroStates: res.Stats.MacroStates, DisTransitions: res.Stats.DisTransitions,
			EnvConfigs: res.Stats.EnvConfigs, EnvMsgs: res.Stats.EnvMsgs,
			EnvThreadBound: res.EnvThreadBound, Witness: res.Witness,
			Workers: res.Stats.Workers, WallMS: res.Stats.Wall.Milliseconds(),
			DecidedBy: res.DecidedBy, PrepassReason: res.PrepassReason,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "raverify:", err)
			return 2
		}
		if res.Unsafe {
			return 1
		}
		return 0
	}
	fmt.Printf("system:   %s\n", sys.Name)
	fmt.Printf("class:    %s\n", res.Class)
	if *verbose {
		printThreadSignature(sys)
	}
	if *doSlice {
		fmt.Printf("slice:    %s\n", sliceStats)
	}
	fmt.Printf("verdict:  %s\n", verdict)
	if res.DecidedBy != "" {
		fmt.Printf("decided:  %s\n", res.DecidedBy)
	}
	if res.DecidedBy == "prepass" {
		fmt.Printf("reason:   %s\n", res.PrepassReason)
		if res.Unsafe && res.EnvThreadBound >= 0 {
			fmt.Printf("bound:    %d env thread(s) suffice (confirming instance)\n", res.EnvThreadBound)
		}
		if res.Unsafe && len(res.Witness) > 0 {
			fmt.Println("confirming interleaving:")
			for _, w := range res.Witness {
				fmt.Println("  ", w)
			}
		}
		if res.Unsafe {
			return 1
		}
		return 0
	}
	if !*datalogBackend {
		fmt.Printf("stats:    macro-states=%d dis-transitions=%d env-configs=%d env-msgs=%d\n",
			res.Stats.MacroStates, res.Stats.DisTransitions, res.Stats.EnvConfigs, res.Stats.EnvMsgs)
	} else {
		fmt.Printf("stats:    skeletons=%d facts=%d rules=%d fixpoint-rounds=%d atoms=%d\n",
			res.Stats.Skeletons, res.Stats.DatalogFacts, res.Stats.DatalogRules,
			res.Stats.FixpointRounds, res.Stats.DatalogAtoms)
	}
	if res.Unsafe && res.EnvThreadBound >= 0 {
		fmt.Printf("bound:    %d env thread(s) suffice (§4.3 cost bound)\n", res.EnvThreadBound)
	}
	if res.Unsafe && len(res.Witness) > 0 {
		fmt.Println("violating thread read, in order:")
		for _, w := range res.Witness {
			fmt.Println("  ", w)
		}
	}
	if *showGraph && res.Graph != nil {
		fmt.Println("\ndependency graph:")
		fmt.Print(res.Graph.String())
	}
	if *confirm && res.Unsafe {
		n, witness, err := paramra.ConfirmViolation(ctx, sys, res, 8, paramra.Options{
			MaxStates:   2_000_000,
			Parallelism: obsf.Workers,
			Tracer:      sess.Tracer,
			TraceSpan:   root,
			Metrics:     sess.Metrics,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "raverify: confirmation failed:", err)
		} else {
			fmt.Printf("\nconfirmed with %d env thread(s); interleaving:\n%s", n, witness)
		}
	}
	if res.Unsafe {
		return 1
	}
	return 0
}

// printThreadSignature lists every thread's classification with its name,
// one line per thread (the -v expansion of the class signature).
func printThreadSignature(sys *paramra.System) {
	fmt.Println("threads:")
	if sys.Env != nil {
		fmt.Printf("  env %-12s %s\n", sys.Env.Name, paramra.ClassifyProgram(sys.Env))
	}
	for _, d := range sys.Dis {
		fmt.Printf("  dis %-12s %s\n", d.Name, paramra.ClassifyProgram(d))
	}
	fmt.Printf("decidable: %v\n", paramra.Classify(sys).Decidable())
}

// sliceDesc renders the slice stats for the JSON report ("" when -slice is
// off, so the field is omitted).
func sliceDesc(sliced bool, stats paramra.SliceStats) string {
	if !sliced {
		return ""
	}
	return stats.String()
}
