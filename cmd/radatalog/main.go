// Command radatalog is the Datalog side of the toolchain. Given a system
// description (.ra) it runs the makeP encoding (§4.1): it translates the
// system into (Cache) Datalog query instances, optionally dumping them, and
// evaluates the ∃-over-skeletons semantics of Theorem 4.1. Given a plain
// Datalog file (.dl) it evaluates its `?-` queries directly, optionally
// under a Cache Datalog bound.
//
// Usage:
//
//	radatalog [-dump] [-max-skeletons N] [-j N] [-timeout D] system.ra
//	radatalog [-cache k] program.dl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paramra"
	"paramra/internal/absint"
	"paramra/internal/analysis"
	"paramra/internal/datalog"
	"paramra/internal/encode"
	"paramra/internal/lang"
	"paramra/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dump         = flag.Bool("dump", false, "print the generated Datalog program(s)")
		maxSkeletons = flag.Int("max-skeletons", 100_000, "cap on dis-run skeleton enumeration")
		stats        = flag.Bool("stats", false, "print per-instance rule/atom counts")
		cacheBound   = flag.Int("cache", 0, ".dl mode: decide queries under the Cache Datalog bound ⊢_k")
		doSlice      = flag.Bool("slice", false, ".ra mode: run the verdict-preserving slicer before encoding")
		prepass      = flag.Bool("prepass", true, ".ra mode: try the static abstract-interpretation prepass before encoding")
	)
	obsf := obs.RegisterFlags(flag.CommandLine)
	obsf.RegisterRunFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: radatalog [flags] system.ra | program.dl")
		flag.PrintDefaults()
		return 2
	}
	// Strict knob validation with the offending flag named, shared with the
	// library and the service.
	if err := (paramra.Options{MaxSkeletons: *maxSkeletons, Parallelism: obsf.Workers}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "radatalog:", err)
		return 2
	}
	ctx, stop := obsf.Context()
	defer stop()
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "radatalog:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "radatalog:", err)
		}
	}()
	root := sess.Tracer.Start("radatalog", nil)
	defer root.End()
	root.SetAttr("file", flag.Arg(0))

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "radatalog:", err)
		return 2
	}
	if strings.HasSuffix(flag.Arg(0), ".dl") {
		return runDatalogFile(string(data), *cacheBound, *dump)
	}
	pspan := root.Child("parse")
	sys, err := lang.ParseSystem(string(data))
	pspan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "radatalog:", err)
		return 2
	}
	if *doSlice {
		sspan := root.Child("slice")
		var st analysis.SliceStats
		sys, st = analysis.Slice(sys, analysis.SliceOptions{})
		sspan.End()
		fmt.Printf("slice:     %s\n", st)
	}
	if *prepass {
		pspan := root.Child("prepass")
		out, perr := absint.Prepass(ctx, sys, absint.Options{})
		pspan.End()
		if perr != nil {
			fmt.Fprintln(os.Stderr, "radatalog: interrupted:", perr)
			return 2
		}
		if out.Verdict != absint.Inconclusive {
			fmt.Printf("system:    %s\n", sys.Name)
			fmt.Printf("prepass:   %s — %s\n", out.Verdict, out.Reason)
			if out.Verdict == absint.Unsafe {
				fmt.Println("verdict:   UNSAFE (static prepass, replay-confirmed)")
				return 1
			}
			fmt.Println("verdict:   SAFE (static prepass)")
			return 0
		}
	}
	espan := root.Child("skeleton-enumeration")
	ps, complete, err := encode.All(sys, *maxSkeletons)
	espan.SetAttr("skeletons", len(ps))
	espan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "radatalog:", err)
		return 2
	}
	fmt.Printf("system:    %s\n", sys.Name)
	fmt.Printf("skeletons: %d (exhaustive=%v)\n", len(ps), complete)

	var unsafe bool
	if *stats || *dump {
		// Diagnostic modes print per-instance output in order; evaluate
		// sequentially so the report is reproducible line for line.
		for i, p := range ps {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "radatalog: interrupted:", ctx.Err())
				return 2
			}
			hit := datalog.Query(p.Prog, p.Goal)
			if hit {
				unsafe = true
			}
			if *stats || hit {
				fmt.Printf("instance %d: rules=%d query=%v\n", i, len(p.Prog.Rules), hit)
			}
			if *dump {
				fmt.Printf("--- instance %d ---\n%s", i, p.Prog.String())
			}
			if hit {
				break
			}
		}
	} else {
		// The instances are independent; evaluate them on a worker pool,
		// first hit wins (the verdict does not depend on which).
		unsafe, err = evalParallel(ctx, ps, obsf.Workers, root, sess.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "radatalog: interrupted:", err)
			return 2
		}
	}
	if unsafe {
		fmt.Println("verdict:   UNSAFE (some skeleton's query succeeded)")
		return 1
	}
	fmt.Println("verdict:   SAFE (no skeleton's query succeeded)")
	return 0
}

// evalParallel evaluates the ∃-over-skeletons semantics with a worker pool;
// remaining instances are cancelled once one query succeeds. The span and
// registry are optional (nil = no instrumentation).
func evalParallel(ctx context.Context, ps []*encode.Problem, workers int, parent *obs.Span, m *obs.Registry) (bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) && len(ps) > 0 {
		workers = len(ps)
	}
	span := parent.Child("datalog-eval")
	var cInst, cRounds *obs.Counter
	var roundHook datalog.RoundHook
	if m != nil {
		cInst = m.Counter("paramra_datalog_instances_total", "Datalog query instances evaluated")
		cRounds = m.Counter("paramra_datalog_rounds_total", "semi-naive fixpoint rounds across instances")
		hRound := m.Histogram("paramra_datalog_round_ns", "wall time per semi-naive delta round (ns)")
		roundHook = func(d time.Duration) { hRound.Observe(int64(d)) }
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		hit  atomic.Bool
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) || cctx.Err() != nil {
					return
				}
				ok, st := datalog.QueryStatsHook(ps[i].Prog, ps[i].Goal, roundHook)
				cInst.Inc()
				cRounds.Add(int64(st.Rounds))
				if ok {
					hit.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if span != nil {
		span.SetAttr("workers", workers)
		span.SetAttr("unsafe", hit.Load())
		span.End()
	}
	if err := ctx.Err(); err != nil && !hit.Load() {
		return false, err
	}
	return hit.Load(), nil
}

// runDatalogFile evaluates a plain .dl program's queries.
func runDatalogFile(src string, cacheBound int, dump bool) int {
	p, queries, err := datalog.ParseProgram(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radatalog:", err)
		return 2
	}
	if dump {
		fmt.Print(p.String())
	}
	fmt.Printf("rules=%d linear=%v derivable-atoms=%d\n",
		len(p.Rules), p.IsLinear(), datalog.EvalSemiNaive(p).Size())
	anyFalse := false
	for _, q := range queries {
		var holds bool
		if cacheBound > 0 {
			holds = datalog.QueryCache(p, q, cacheBound)
			fmt.Printf("?- %s  ⊢_%d %v\n", p.GroundString(q), cacheBound, holds)
		} else {
			holds = datalog.Query(p, q)
			fmt.Printf("?- %s  %v\n", p.GroundString(q), holds)
		}
		if !holds {
			anyFalse = true
		}
	}
	if anyFalse {
		return 1
	}
	return 0
}
