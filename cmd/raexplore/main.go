// Command raexplore explores a *fixed instance* of a system under the
// concrete release-acquire semantics (Figure 2 of the paper), reporting
// whether an assertion violation is reachable and, if so, a full
// interleaving witness.
//
// Usage:
//
//	raexplore [-env N] [-max-states M] [-j N] [-timeout D] system.ra
package main

import (
	"flag"
	"fmt"
	"os"

	"paramra"
	"paramra/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nEnv      = flag.Int("env", 1, "number of environment threads in the instance")
		maxStates = flag.Int("max-states", 1_000_000, "state cap (0 = unlimited)")
		sweep     = flag.Int("sweep", 0, "explore instances with 0..N env threads and report each")
		deadlocks = flag.Bool("deadlocks", false, "classify sink states (terminal vs stuck threads) instead of checking safety")
		prepass   = flag.Bool("prepass", true, "try the static abstract-interpretation prepass before exploring")
	)
	obsf := obs.RegisterFlags(flag.CommandLine)
	obsf.RegisterRunFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: raexplore [flags] system.ra")
		flag.PrintDefaults()
		return 2
	}
	ctx, stop := obsf.Context()
	defer stop()
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "raexplore:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "raexplore:", err)
		}
	}()
	root := sess.Tracer.Start("raexplore", nil)
	defer root.End()
	root.SetAttr("file", flag.Arg(0))

	pspan := root.Child("parse")
	sys, err := paramra.ParseFile(flag.Arg(0))
	pspan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "raexplore:", err)
		return 2
	}
	opts := paramra.Options{
		MaxStates:   *maxStates,
		Parallelism: obsf.Workers,
		Tracer:      sess.Tracer,
		TraceSpan:   root,
		Metrics:     sess.Metrics,
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "raexplore:", err)
		return 2
	}
	if *prepass && !*deadlocks {
		// A parameterized SAFE proof covers every instance, so any requested
		// exploration (single n or sweep) can be skipped. An UNSAFE witness
		// transfers only when its replica count matches the request.
		out, perr := paramra.Prepass(ctx, sys, opts)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "raexplore:", perr)
			return 2
		}
		switch {
		case out.Verdict == paramra.PrepassSafe:
			fmt.Printf("instance: %s (all env thread counts)\n", sys.Name)
			fmt.Printf("prepass:  %s\n", out.Reason)
			fmt.Println("verdict:  SAFE (static prepass, every instance)")
			return 0
		case out.Verdict == paramra.PrepassUnsafe && *sweep == 0 && out.EnvThreads == *nEnv:
			fmt.Printf("instance: %s with %d env thread(s)\n", sys.Name, *nEnv)
			fmt.Printf("prepass:  %s\n", out.Reason)
			fmt.Println("verdict:  UNSAFE")
			fmt.Println("witness:")
			fmt.Print(out.Witness)
			return 1
		}
	}
	if *deadlocks {
		rep, err := paramra.FindDeadlocks(ctx, sys, *nEnv, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raexplore:", err)
			return 2
		}
		fmt.Printf("instance: %s with %d env thread(s)\n", sys.Name, *nEnv)
		fmt.Printf("sinks:    %d terminal, %d deadlocked (complete=%v)\n",
			rep.Terminal, rep.Deadlocks, rep.Complete)
		if rep.Deadlocks > 0 {
			fmt.Printf("stuck threads: %v\nexample state:\n%s", rep.StuckThreads, rep.Example)
			return 1
		}
		return 0
	}
	if *sweep > 0 {
		for n := 0; n <= *sweep; n++ {
			res, err := paramra.VerifyInstance(ctx, sys, n, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "raexplore:", err)
				return 2
			}
			fmt.Printf("env=%d: unsafe=%v states=%d complete=%v\n", n, res.Unsafe, res.States, res.Complete)
		}
		return 0
	}
	res, err := paramra.VerifyInstance(ctx, sys, *nEnv, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raexplore:", err)
		return 2
	}
	fmt.Printf("instance: %s with %d env thread(s)\n", sys.Name, *nEnv)
	fmt.Printf("states:   %d (complete=%v)\n", res.States, res.Complete)
	if res.Unsafe {
		fmt.Println("verdict:  UNSAFE")
		fmt.Println("witness:")
		fmt.Print(res.Witness)
		return 1
	}
	fmt.Println("verdict:  SAFE (within explored bounds)")
	return 0
}
