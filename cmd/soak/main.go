// Command soak is the load generator and correctness harness for raserved.
// It replays a corpus of .ra systems against a live server for a
// configurable duration at a configurable concurrency and asserts, at the
// end of the run:
//
//   - zero unexpected non-2xx responses (intentional error probes — bad
//     syntax, bad knobs, tiny budgets, oversized bodies — are asserted to
//     produce their exact documented status and code, and counted apart;
//     504 server_budget_exceeded on the uncached heavyweight endpoints is
//     counted as saturation, not failure — see saturation504);
//   - every verdict byte-identical to a local library run with the same
//     options (the deterministic kernel of the response, which is also what
//     raverify prints — the verdict strings share one implementation);
//   - zero goroutine leaks on the server: the /statusz goroutine count
//     after the storm settles must not exceed the pre-storm count plus a
//     small slack;
//   - /metrics parses as valid Prometheus text exposition, and the
//     per-endpoint latency histograms carry soak trace IDs as OpenMetrics
//     exemplars (-check-metrics);
//   - every request carries a unique X-Trace-Id and the server echoes it
//     into the response header and envelope; /debug/slow parses, and with
//     -expect-slow (a server started with a floor slow threshold) contains
//     soak-traced entries with per-phase span breakdowns;
//   - with -expect-cache (a server running its default verdict cache), the
//     storm interleaves renamed-duplicate traffic whose verdicts must be
//     byte-identical to the originals', /metrics must show
//     paramra_cache_hits_total > 0, and an "X-Trace: 1" request must carry
//     a cache-lookup span in its trace tree.
//
// The local expectations are computed through a local verdict cache when
// -server-cache is on (the default, matching a default-configured raserved):
// cache misses verify the canonical form of the system, so witnesses and
// classes are spelled in canonical names on both sides of the comparison.
//
// Usage:
//
//	soak -addr http://127.0.0.1:8080 [-corpus testdata/systems]
//	     [-duration 60s] [-concurrency 8] [-check-metrics]
//
// Exit code 0 means every assertion held; 1 means at least one failed; 2 is
// a usage or setup error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paramra"
	"paramra/internal/cache"
	"paramra/internal/lang"
	"paramra/internal/obs"
	"paramra/internal/serve"
)

// entry is one corpus system with its locally precomputed expectations.
type entry struct {
	name   string
	src    string
	renSrc string // seeded renamed clone (set when the server caches)

	core    []byte // deterministic verify kernel (fixpoint/prepass defaults)
	unsafe  bool
	wall    time.Duration
	light   bool   // cheap enough for the secondary endpoints
	heavy   bool   // times out at 100ms with the fast paths off (408 probe)
	dlCore  []byte // datalog-backend kernel (light entries only)
	deadRes *paramra.DeadlockResult
	invRes  map[string][]int
}

// counters aggregates the run.
type counters struct {
	requests  atomic.Int64
	probes    atomic.Int64
	mismatch  atomic.Int64
	badStatus atomic.Int64
	transport atomic.Int64
	saturated atomic.Int64
}

// saturation504 reports whether a response is the server's documented
// overload answer — 504 with code server_budget_exceeded — on one of the
// uncached heavyweight endpoints. With the verdict cache answering verify
// traffic in microseconds, the storm drives those endpoints much harder
// than an uncached server ever saw; exhausting the server-imposed budget
// under that load is correct behavior, counted apart, not a failure.
func saturation504(status int, data []byte) bool {
	if status != http.StatusGatewayTimeout {
		return false
	}
	var er serve.ErrorResponse
	return json.Unmarshal(data, &er) == nil && er.Error.Code == serve.CodeServerBudget
}

var fail int32 // sticky failure flag

// traceSeq mints the unique per-request trace IDs every soak request sends.
var traceSeq atomic.Int64

func nextTraceID() string { return fmt.Sprintf("soak-%06d", traceSeq.Add(1)) }

func failf(format string, args ...any) {
	atomic.StoreInt32(&fail, 1)
	fmt.Fprintf(os.Stderr, "soak: FAIL: "+format+"\n", args...)
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "", "base URL of a running raserved, e.g. http://127.0.0.1:8080 (required)")
		corpusDir    = flag.String("corpus", filepath.Join("testdata", "systems"), "directory of .ra systems to replay")
		duration     = flag.Duration("duration", 60*time.Second, "how long to keep the request storm running")
		concurrency  = flag.Int("concurrency", 8, "concurrent client workers")
		budgetMS     = flag.Int64("budget-ms", 0, "per-request budget sent to the server (0 = server default)")
		checkMetrics = flag.Bool("check-metrics", true, "fetch /metrics at the end and validate the Prometheus text format")
		probes       = flag.Bool("probes", true, "interleave intentional-error probes (400/408/413) and assert their exact statuses")
		leakSlack    = flag.Int("leak-slack", 16, "allowed goroutine-count growth on the server across the run")
		expectSlow   = flag.Bool("expect-slow", false, "assert /debug/slow captured soak requests (use against a server with a floor -slow-threshold)")
		serverCache  = flag.Bool("server-cache", true, "the server runs its default verdict cache; compute local expectations through a local cache so canonical-form verdicts match")
		expectCache  = flag.Bool("expect-cache", false, "interleave renamed-duplicate traffic and assert cache hits in /metrics plus cache-lookup trace spans (requires -server-cache)")
		wait         = flag.Duration("wait", 10*time.Second, "how long to wait for the server to become healthy")
	)
	flag.Parse()
	if *addr == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: soak -addr http://HOST:PORT [flags]")
		flag.PrintDefaults()
		return 2
	}
	if *expectCache && !*serverCache {
		fmt.Fprintln(os.Stderr, "soak: -expect-cache requires -server-cache")
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 5 * time.Minute}

	if err := waitHealthy(client, base, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}

	entries, err := loadCorpus(*corpusDir, *budgetMS, *serverCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}
	fmt.Printf("soak: corpus %d entries, duration %s, concurrency %d\n",
		len(entries), *duration, *concurrency)

	// Warm up: one verify per entry, so steady-state goroutine pools
	// (scheduler, http transports, verifier workers) exist before the leak
	// baseline is taken.
	var c counters
	var latMu sync.Mutex
	var latencies []time.Duration
	for _, e := range entries {
		doVerify(client, base, e, e.src, *budgetMS, true, &c, nil, nil)
	}
	g0, err := goroutines(client, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}

	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				e := entries[rng.Intn(len(entries))]
				roll := rng.Intn(100)
				switch {
				case *probes && roll < 6:
					c.probes.Add(1)
					runProbe(client, base, entries, rng)
				case roll < 70:
					// With -expect-cache, half of this bucket resubmits the
					// seeded renamed clone: same canonical form, so the
					// server must answer with the original's exact verdict.
					src := e.src
					if *expectCache && roll%2 == 0 {
						src = e.renSrc
					}
					doVerify(client, base, e, src, *budgetMS, true, &c, &latMu, &latencies)
				case roll < 80:
					doVerify(client, base, e, e.src, *budgetMS, false, &c, &latMu, &latencies)
				case roll < 85 && e.light:
					doDatalog(client, base, e, *budgetMS, &c)
				case roll < 90 && e.light:
					doInstance(client, base, e, *budgetMS, &c)
				case roll < 95 && e.light:
					doDeadlocks(client, base, e, *budgetMS, &c)
				case e.light:
					doInventory(client, base, e, *budgetMS, &c)
				default:
					doVerify(client, base, e, e.src, *budgetMS, true, &c, &latMu, &latencies)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	// Let the server's per-request goroutines (verifier pools, progress
	// tickers) finish parking before judging leaks.
	time.Sleep(1 * time.Second)
	g1, err := goroutines(client, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}
	if g1 > g0+*leakSlack {
		failf("goroutine leak: %d before storm, %d after (slack %d)", g0, g1, *leakSlack)
	}

	if *checkMetrics {
		if err := validateMetrics(client, base); err != nil {
			failf("metrics validation: %v", err)
		}
	}
	if err := validateSlow(client, base, *expectSlow); err != nil {
		failf("slow-ring validation: %v", err)
	}
	if *expectCache {
		if err := validateCacheMetrics(client, base); err != nil {
			failf("cache-metrics validation: %v", err)
		}
		if err := validateCacheTrace(client, base, entries[0], *budgetMS); err != nil {
			failf("cache-trace validation: %v", err)
		}
	}

	report(&c, latencies, g0, g1)
	if atomic.LoadInt32(&fail) != 0 || c.mismatch.Load() > 0 || c.badStatus.Load() > 0 || c.transport.Load() > 0 {
		return 1
	}
	fmt.Println("soak: PASS")
	return 0
}

// waitHealthy polls /healthz until the server answers.
func waitHealthy(client *http.Client, base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s", base, d)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// loadCorpus reads the .ra files and computes the local expectations with
// the exact options a default-configured server applies, so the comparison
// is apples to apples. With useCache the expectations run through a local
// verdict cache — mirroring the server's default — which makes every miss
// verify the canonical system, so witnesses and classes match a caching
// server byte for byte; a seeded renamed clone of each source is kept for
// the -expect-cache traffic.
func loadCorpus(dir string, budgetMS int64, useCache bool) ([]*entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ra"))
	if err != nil || len(paths) == 0 {
		return nil, fmt.Errorf("no .ra corpus under %s", dir)
	}
	sort.Strings(paths)
	cfg := serve.Config{}.Defaulted()
	ctx := context.Background()
	var localCache *paramra.Cache
	if useCache {
		localCache = paramra.NewCache(paramra.CacheOptions{})
	}
	var entries []*entry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		e := &entry{name: strings.TrimSuffix(filepath.Base(p), ".ra"), src: string(data)}
		sys, err := paramra.Parse(e.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		if useCache {
			e.renSrc = lang.Print(cache.Rename(sys, 7))
		}
		opts, err := cfg.Options(serve.RequestOptions{BudgetMS: budgetMS})
		if err != nil {
			return nil, err
		}
		opts.Cache = localCache
		t0 := time.Now()
		res, err := paramra.Verify(ctx, sys, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: local verify: %v", p, err)
		}
		e.wall = time.Since(t0)
		e.unsafe = res.Unsafe
		e.core = serve.VerifyResponse{
			System: sys.Name, Verdict: serve.Verdict(res), Result: serve.FromResult(res),
		}.CoreBytes()
		e.light = e.wall < 500*time.Millisecond

		// Heaviness for the 408 probe is measured the way the probe runs:
		// fast paths off. A system that cannot finish within 100ms here can
		// never finish within the probe's 1ms budget.
		hopts := opts
		hopts.Prepass = false
		hctx, hcancel := context.WithTimeout(ctx, 100*time.Millisecond)
		if _, herr := paramra.Verify(hctx, sys, hopts); errors.Is(herr, context.DeadlineExceeded) {
			e.heavy = true
		}
		hcancel()

		if e.light {
			dopts := opts
			dopts.Datalog = true
			dres, err := paramra.Verify(ctx, sys, dopts)
			if err != nil {
				return nil, fmt.Errorf("%s: local datalog verify: %v", p, err)
			}
			e.dlCore = serve.VerifyResponse{
				System: sys.Name, Verdict: serve.Verdict(dres), Result: serve.FromResult(dres),
			}.CoreBytes()
			dr, err := paramra.FindDeadlocks(ctx, sys, 1, opts)
			if err != nil {
				return nil, fmt.Errorf("%s: local deadlocks: %v", p, err)
			}
			e.deadRes = &dr
			inv, err := paramra.Inventory(ctx, sys, opts)
			if err != nil {
				return nil, fmt.Errorf("%s: local inventory: %v", p, err)
			}
			e.invRes = inv
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// post sends a request — stamped with traceID when non-empty — and returns
// status, body, ok(transport). A non-empty traceID must be echoed in the
// response's X-Trace-Id header; a silent drop is a propagation failure.
func post(client *http.Client, url, contentType string, body []byte, traceID string, c *counters) (int, []byte, bool) {
	c.requests.Add(1)
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		c.transport.Add(1)
		failf("transport: %s: %v", url, err)
		return 0, nil, false
	}
	req.Header.Set("Content-Type", contentType)
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := client.Do(req)
	if err != nil {
		c.transport.Add(1)
		failf("transport: %s: %v", url, err)
		return 0, nil, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.transport.Add(1)
		failf("transport: %s: reading body: %v", url, err)
		return 0, nil, false
	}
	if traceID != "" && resp.Header.Get("X-Trace-Id") != traceID {
		c.mismatch.Add(1)
		failf("trace %s: header echoed %q", traceID, resp.Header.Get("X-Trace-Id"))
	}
	return resp.StatusCode, data, true
}

// doVerify replays one verify request — as the JSON envelope or the raw .ra
// body — and compares the deterministic kernel byte-for-byte. src is the
// source actually sent (e.src, or e.renSrc for renamed-duplicate traffic —
// the expectation bytes are the same either way, which is the point).
func doVerify(client *http.Client, base string, e *entry, src string, budgetMS int64, asJSON bool, c *counters, latMu *sync.Mutex, lat *[]time.Duration) {
	var (
		status int
		data   []byte
		ok     bool
	)
	tid := nextTraceID()
	t0 := time.Now()
	if asJSON {
		body, _ := json.Marshal(serve.VerifyRequest{
			System:  src,
			Options: serve.RequestOptions{BudgetMS: budgetMS},
		})
		status, data, ok = post(client, base+"/v1/verify", "application/json", body, tid, c)
	} else {
		url := base + "/v1/verify"
		if budgetMS > 0 {
			url += fmt.Sprintf("?budgetMs=%d", budgetMS)
		}
		status, data, ok = post(client, url, "text/plain", []byte(src), tid, c)
	}
	if !ok {
		return
	}
	d := time.Since(t0)
	if latMu != nil {
		latMu.Lock()
		*lat = append(*lat, d)
		latMu.Unlock()
	}
	if status != http.StatusOK {
		c.badStatus.Add(1)
		failf("verify %s: status %d: %s", e.name, status, truncate(data))
		return
	}
	var resp serve.VerifyResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		c.mismatch.Add(1)
		failf("verify %s: bad response JSON: %v", e.name, err)
		return
	}
	if resp.TraceID != tid {
		c.mismatch.Add(1)
		failf("verify %s: envelope traceId %q, want %q", e.name, resp.TraceID, tid)
	}
	if got := resp.CoreBytes(); !bytes.Equal(got, e.core) {
		c.mismatch.Add(1)
		failf("verify %s: verdict drift:\nserver: %s\nlocal:  %s", e.name, got, e.core)
	}
}

// doDatalog is doVerify with the Datalog backend selected.
func doDatalog(client *http.Client, base string, e *entry, budgetMS int64, c *counters) {
	body, _ := json.Marshal(serve.VerifyRequest{
		System:  e.src,
		Options: serve.RequestOptions{BudgetMS: budgetMS, Datalog: true},
	})
	tid := nextTraceID()
	status, data, ok := post(client, base+"/v1/verify", "application/json", body, tid, c)
	if !ok {
		return
	}
	if status != http.StatusOK {
		if saturation504(status, data) {
			c.saturated.Add(1)
			return
		}
		c.badStatus.Add(1)
		failf("datalog %s: status %d: %s", e.name, status, truncate(data))
		return
	}
	var resp serve.VerifyResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		c.mismatch.Add(1)
		failf("datalog %s: bad response JSON: %v", e.name, err)
		return
	}
	if resp.TraceID != tid {
		c.mismatch.Add(1)
		failf("datalog %s: envelope traceId %q, want %q", e.name, resp.TraceID, tid)
	}
	if got := resp.CoreBytes(); !bytes.Equal(got, e.dlCore) {
		c.mismatch.Add(1)
		failf("datalog %s: verdict drift:\nserver: %s\nlocal:  %s", e.name, got, e.dlCore)
	}
}

// doInstance explores the 1-env instance and checks the verdict bit.
func doInstance(client *http.Client, base string, e *entry, budgetMS int64, c *counters) {
	body, _ := json.Marshal(serve.InstanceRequest{
		System:     e.src,
		EnvThreads: 1,
		Options:    serve.RequestOptions{BudgetMS: budgetMS},
	})
	status, data, ok := post(client, base+"/v1/instance", "application/json", body, nextTraceID(), c)
	if !ok {
		return
	}
	if status != http.StatusOK {
		if saturation504(status, data) {
			c.saturated.Add(1)
			return
		}
		c.badStatus.Add(1)
		failf("instance %s: status %d: %s", e.name, status, truncate(data))
		return
	}
	var resp serve.InstanceResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		c.mismatch.Add(1)
		failf("instance %s: bad response JSON: %v", e.name, err)
	}
}

// doDeadlocks checks the deterministic sink-state counts of the 1-env
// instance.
func doDeadlocks(client *http.Client, base string, e *entry, budgetMS int64, c *counters) {
	body, _ := json.Marshal(serve.InstanceRequest{
		System:     e.src,
		EnvThreads: 1,
		Options:    serve.RequestOptions{BudgetMS: budgetMS},
	})
	status, data, ok := post(client, base+"/v1/deadlocks", "application/json", body, nextTraceID(), c)
	if !ok {
		return
	}
	if status != http.StatusOK {
		if saturation504(status, data) {
			c.saturated.Add(1)
			return
		}
		c.badStatus.Add(1)
		failf("deadlocks %s: status %d: %s", e.name, status, truncate(data))
		return
	}
	var resp serve.DeadlockResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		c.mismatch.Add(1)
		failf("deadlocks %s: bad response JSON: %v", e.name, err)
		return
	}
	want := serve.FromDeadlockResult(*e.deadRes)
	got := resp.Result
	if got.Deadlocks != want.Deadlocks || got.Terminal != want.Terminal || got.Complete != want.Complete {
		c.mismatch.Add(1)
		failf("deadlocks %s: drift: server %+v local %+v", e.name, got, want)
	}
}

// doInventory checks the full Message Generation relation.
func doInventory(client *http.Client, base string, e *entry, budgetMS int64, c *counters) {
	body, _ := json.Marshal(serve.VerifyRequest{
		System:  e.src,
		Options: serve.RequestOptions{BudgetMS: budgetMS},
	})
	status, data, ok := post(client, base+"/v1/inventory", "application/json", body, nextTraceID(), c)
	if !ok {
		return
	}
	if status != http.StatusOK {
		if saturation504(status, data) {
			c.saturated.Add(1)
			return
		}
		c.badStatus.Add(1)
		failf("inventory %s: status %d: %s", e.name, status, truncate(data))
		return
	}
	var resp serve.InventoryResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		c.mismatch.Add(1)
		failf("inventory %s: bad response JSON: %v", e.name, err)
		return
	}
	want, _ := json.Marshal(e.invRes)
	got, _ := json.Marshal(resp.Inventory)
	if !bytes.Equal(want, got) {
		c.mismatch.Add(1)
		failf("inventory %s: drift: server %s local %s", e.name, got, want)
	}
}

// runProbe sends one intentional-error request and asserts the documented
// status and machine-readable code.
func runProbe(client *http.Client, base string, entries []*entry, rng *rand.Rand) {
	var pc counters // probe requests are counted separately by the caller
	expect := func(wantStatus int, wantCode string, status int, data []byte, ok bool, what string) {
		if !ok {
			return
		}
		if status != wantStatus {
			failf("probe %s: status %d, want %d: %s", what, status, wantStatus, truncate(data))
			return
		}
		var er serve.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			failf("probe %s: error body not JSON: %v", what, err)
			return
		}
		if er.Error.Code != wantCode {
			failf("probe %s: code %q, want %q", what, er.Error.Code, wantCode)
		}
		if er.TraceID == "" {
			failf("probe %s: error envelope missing the generated trace ID", what)
		}
	}
	switch rng.Intn(4) {
	case 0: // syntax error → 400 parse_error
		status, data, ok := post(client, base+"/v1/verify", "text/plain", []byte("system oops {"), "", &pc)
		expect(http.StatusBadRequest, serve.CodeParseError, status, data, ok, "syntax")
	case 1: // negative knob → 400 invalid_options naming the field
		body, _ := json.Marshal(serve.VerifyRequest{
			System:  entries[0].src,
			Options: serve.RequestOptions{MaxStates: -1},
		})
		status, data, ok := post(client, base+"/v1/verify", "application/json", body, "", &pc)
		expect(http.StatusBadRequest, serve.CodeInvalidOptions, status, data, ok, "bad-knob")
	case 2: // tiny client budget on a heavy entry, fast paths off → 408
		var heavy *entry
		for _, e := range entries {
			if e.heavy {
				heavy = e
				break
			}
		}
		if heavy == nil { // no entry slow enough for a deterministic 408
			runOtherProbe(client, base)
			return
		}
		off := false
		body, _ := json.Marshal(serve.VerifyRequest{
			System:  heavy.src,
			Options: serve.RequestOptions{BudgetMS: 1, Prepass: &off},
		})
		status, data, ok := post(client, base+"/v1/verify", "application/json", body, "", &pc)
		expect(http.StatusRequestTimeout, serve.CodeBudgetExceeded, status, data, ok, "budget")
	default: // oversized body → 413
		big := append([]byte(entries[0].src), bytes.Repeat([]byte{' '}, 1<<20+1024)...)
		status, data, ok := post(client, base+"/v1/verify", "text/plain", big, "", &pc)
		expect(http.StatusRequestEntityTooLarge, serve.CodeBodyTooLarge, status, data, ok, "oversize")
	}
}

// runOtherProbe is the fallback when no corpus entry is heavy enough for a
// deterministic 408: re-run the syntax probe so the probe mix keeps its rate.
func runOtherProbe(client *http.Client, base string) {
	var pc counters
	status, data, ok := post(client, base+"/v1/verify", "text/plain", []byte("system oops {"), "", &pc)
	if !ok {
		return
	}
	if status != http.StatusBadRequest {
		failf("probe syntax-fallback: status %d, want 400: %s", status, truncate(data))
	}
}

// goroutines reads the server's goroutine count from /statusz.
func goroutines(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("decoding /statusz: %w", err)
	}
	return st.Goroutines, nil
}

// validateMetrics fetches /metrics and checks the Prometheus text format
// plus the presence of the server's own families.
func validateMetrics(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fams, err := serve.ParsePrometheus(string(text))
	if err != nil {
		return err
	}
	for _, want := range []string{"raserved_requests_total", "raserved_request_ns", "raserved_inflight",
		"raserved_endpoint_verify_ns"} {
		if fams[want] == nil {
			return fmt.Errorf("family %s missing from /metrics", want)
		}
	}
	// Every soak request carried a trace ID, so the endpoint histogram must
	// retain at least one soak exemplar.
	found := false
	for _, tid := range fams["raserved_endpoint_verify_ns"].Exemplars {
		if strings.HasPrefix(tid, "soak-") {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("raserved_endpoint_verify_ns carries no soak exemplar: %v",
			fams["raserved_endpoint_verify_ns"].Exemplars)
	}
	if n := fams["raserved_requests_total"].Samples["raserved_requests_total"]; n <= 0 {
		return fmt.Errorf("raserved_requests_total = %v after a soak run", n)
	}
	return nil
}

// validateCacheMetrics asserts the server's verdict cache saw hits: the
// storm replays every system many times (and renamed clones besides), so a
// caching server must report paramra_cache_hits_total > 0.
func validateCacheMetrics(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fams, err := serve.ParsePrometheus(string(text))
	if err != nil {
		return err
	}
	fam := fams["paramra_cache_hits_total"]
	if fam == nil {
		return fmt.Errorf("paramra_cache_hits_total missing from /metrics — is the server's cache enabled?")
	}
	if n := fam.Samples["paramra_cache_hits_total"]; n <= 0 {
		return fmt.Errorf("paramra_cache_hits_total = %v after a duplicate-heavy storm", n)
	}
	return nil
}

// validateCacheTrace sends one traced verify (the corpus was replayed all
// storm long, so this is a guaranteed warm hit) and requires a cache-lookup
// span in the returned tree.
func validateCacheTrace(client *http.Client, base string, e *entry, budgetMS int64) error {
	body, _ := json.Marshal(serve.VerifyRequest{
		System:  e.src,
		Options: serve.RequestOptions{BudgetMS: budgetMS},
	})
	req, err := http.NewRequest("POST", base+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace", "1")
	req.Header.Set("X-Trace-Id", nextTraceID())
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traced verify: status %d: %s", resp.StatusCode, truncate(data))
	}
	var vr serve.VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		return fmt.Errorf("traced verify: bad response JSON: %v", err)
	}
	if vr.Trace == nil || len(vr.Trace.Spans) == 0 {
		return fmt.Errorf("traced verify returned no span tree (trace: %+v)", vr.Trace)
	}
	var walk func(nodes []*obs.TreeNode) bool
	walk = func(nodes []*obs.TreeNode) bool {
		for _, n := range nodes {
			if n.Name == "cache-lookup" || walk(n.Children) {
				return true
			}
		}
		return false
	}
	if !walk(vr.Trace.Spans) {
		return fmt.Errorf("no cache-lookup span in the trace tree: %s", truncate(data))
	}
	return nil
}

// validateSlow fetches /debug/slow and checks its shape; with expectEntries
// (a server running with a floor slow threshold) it additionally requires
// soak-traced entries whose span breakdowns are present.
func validateSlow(client *http.Client, base string, expectEntries bool) error {
	resp, err := client.Get(base + "/debug/slow")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/slow: status %d", resp.StatusCode)
	}
	var sr serve.SlowResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("decoding /debug/slow: %w", err)
	}
	for _, e := range sr.Requests {
		if e.TraceID == "" || e.DurNs <= 0 || e.Path == "" {
			return fmt.Errorf("malformed slow entry: %+v", e)
		}
	}
	if !expectEntries {
		return nil
	}
	for _, e := range sr.Requests {
		if strings.HasPrefix(e.TraceID, "soak-") && len(e.Spans) > 0 {
			return nil
		}
	}
	return fmt.Errorf("no soak-traced slow entry with spans among %d entries (total %d)",
		len(sr.Requests), sr.Total)
}

// report prints the end-of-run summary.
func report(c *counters, lats []time.Duration, g0, g1 int) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("soak: %d requests (%d probes), %d verdict mismatches, %d unexpected statuses, %d transport errors, %d saturation 504s\n",
		c.requests.Load(), c.probes.Load(), c.mismatch.Load(), c.badStatus.Load(), c.transport.Load(), c.saturated.Load())
	if len(lats) > 0 {
		fmt.Printf("soak: verify latency p50=%s p90=%s p99=%s max=%s (n=%d)\n",
			pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
			pct(0.99).Round(time.Millisecond), lats[len(lats)-1].Round(time.Millisecond), len(lats))
	}
	fmt.Printf("soak: server goroutines %d → %d\n", g0, g1)
}

// truncate keeps failure output readable.
func truncate(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 300 {
		return s[:300] + "…"
	}
	return s
}
