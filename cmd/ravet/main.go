// Command ravet is the static analyzer ("vet") for .ra system files. It
// parses each file, runs the lint rules of internal/analysis — dead register
// stores, loads whose value is never read, unreachable code and asserts,
// write-only shared variables, constant-false assumes, CAS operations that
// can never succeed, registers read before assignment, empty loop bodies —
// plus the abstract-interpretation rules of internal/absint — asserts no
// interference can satisfy, CAS expectations disjoint from every written
// value, comparisons against never-written values, stores no reader can
// distinguish — and prints one "file:line:col: rule: message" diagnostic per
// finding. With -json the findings are emitted instead as a JSON array of
// {file, line, col, rule, severity, thread, msg} objects.
//
// Usage:
//
//	ravet [flags] system.ra ...
//
// The exit code is 0 when every file is clean, 1 when any diagnostic fired,
// and 2 on parse or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paramra"
	"paramra/internal/analysis"
	"paramra/internal/obs"
)

// jsonDiag is the machine-readable diagnostic shape (-json): one object per
// finding, in the same order as the text output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Thread   string `json:"thread,omitempty"`
	Msg      string `json:"msg"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		footprint = flag.Bool("footprint", false, "also print each thread's per-variable load/store/CAS footprint")
		slicePrev = flag.Bool("slice", false, "also print what the verdict-preserving slicer would remove")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	)
	obsf := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ravet [flags] system.ra ...")
		flag.PrintDefaults()
		return 2
	}
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravet:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ravet:", err)
		}
	}()
	root := sess.Tracer.Start("ravet", nil)
	defer root.End()

	code := 0
	jsonDiags := []jsonDiag{} // non-nil so -json prints [] on clean runs
	for _, path := range flag.Args() {
		fspan := root.Child("vet")
		fspan.SetAttr("file", path)
		sys, err := paramra.ParseFile(path)
		if err != nil {
			fspan.End()
			fmt.Fprintln(os.Stderr, err)
			code = 2
			continue
		}
		diags := paramra.Analyze(sys)
		fspan.SetAttr("diagnostics", len(diags))
		fspan.End()
		for _, d := range diags {
			d.File = path
			if *jsonOut {
				jsonDiags = append(jsonDiags, jsonDiag{
					File: d.File, Line: d.Pos.Line, Col: d.Pos.Col,
					Rule: d.Rule, Severity: analysis.Severity(d.Rule),
					Thread: d.Thread, Msg: d.Msg,
				})
			} else {
				fmt.Println(d)
			}
			if code == 0 {
				code = 1
			}
		}
		if *footprint {
			fmt.Printf("%s: footprint:\n", path)
			fmt.Print(indent(analysis.Footprint(sys).String()))
		}
		if *slicePrev {
			if _, stats := paramra.Slice(sys); stats.Changed() {
				fmt.Printf("%s: slice would shrink the system: %s\n", path, stats)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonDiags); err != nil {
			fmt.Fprintln(os.Stderr, "ravet:", err)
			return 2
		}
	}
	return code
}

func indent(s string) string {
	var out []byte
	start := true
	for i := 0; i < len(s); i++ {
		if start {
			out = append(out, ' ', ' ')
			start = false
		}
		out = append(out, s[i])
		if s[i] == '\n' {
			start = true
		}
	}
	return string(out)
}
