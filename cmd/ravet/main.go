// Command ravet is the static analyzer ("vet") for .ra system files. It
// parses each file, runs the lint rules of internal/analysis — dead register
// stores, loads whose value is never read, unreachable code and asserts,
// write-only shared variables, constant-false assumes, CAS operations that
// can never succeed, registers read before assignment, empty loop bodies —
// and prints one "file:line:col: rule: message" diagnostic per finding.
//
// Usage:
//
//	ravet [flags] system.ra ...
//
// The exit code is 0 when every file is clean, 1 when any diagnostic fired,
// and 2 on parse or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"paramra"
	"paramra/internal/analysis"
	"paramra/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		footprint = flag.Bool("footprint", false, "also print each thread's per-variable load/store/CAS footprint")
		slicePrev = flag.Bool("slice", false, "also print what the verdict-preserving slicer would remove")
	)
	obsf := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ravet [flags] system.ra ...")
		flag.PrintDefaults()
		return 2
	}
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ravet:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ravet:", err)
		}
	}()
	root := sess.Tracer.Start("ravet", nil)
	defer root.End()

	code := 0
	for _, path := range flag.Args() {
		fspan := root.Child("vet")
		fspan.SetAttr("file", path)
		sys, err := paramra.ParseFile(path)
		if err != nil {
			fspan.End()
			fmt.Fprintln(os.Stderr, err)
			code = 2
			continue
		}
		diags := paramra.Analyze(sys)
		fspan.SetAttr("diagnostics", len(diags))
		fspan.End()
		for _, d := range diags {
			d.File = path
			fmt.Println(d)
			if code == 0 {
				code = 1
			}
		}
		if *footprint {
			fmt.Printf("%s: footprint:\n", path)
			fmt.Print(indent(analysis.Footprint(sys).String()))
		}
		if *slicePrev {
			if _, stats := paramra.Slice(sys); stats.Changed() {
				fmt.Printf("%s: slice would shrink the system: %s\n", path, stats)
			}
		}
	}
	return code
}

func indent(s string) string {
	var out []byte
	start := true
	for i := 0; i < len(s); i++ {
		if start {
			out = append(out, ' ', ' ')
			start = false
		}
		out = append(out, s[i])
		if s[i] == '\n' {
			start = true
		}
	}
	return string(out)
}
