// Command ratqbf exercises the PSPACE-hardness reduction of Theorem 5.1:
// it reads a quantified Boolean formula, builds the Figure 6 PureRA system,
// verifies it with the parameterized verifier, and cross-checks the verdict
// against a brute-force QBF evaluation.
//
// Usage:
//
//	ratqbf [-j N] [-timeout D] 'forall u0 exists e1 forall u1 : (u0 | ~e1) & (e1 | u1)'
//	ratqbf -random -n 2 -clauses 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"paramra"
	"paramra/internal/lang"
	"paramra/internal/obs"
	"paramra/internal/simplified"
	"paramra/internal/tqbf"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		random  = flag.Bool("random", false, "generate a random formula instead of reading one")
		n       = flag.Int("n", 1, "existential levels for -random (2n+1 variables)")
		clauses = flag.Int("clauses", 2, "CNF clauses for -random")
		seed    = flag.Int64("seed", 1, "random seed")
		dump    = flag.Bool("dump", false, "print the generated PureRA system")
	)
	obsf := obs.RegisterFlags(flag.CommandLine)
	obsf.RegisterRunFlags(flag.CommandLine)
	flag.Parse()
	if err := (paramra.Options{Parallelism: obsf.Workers}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ratqbf:", err)
		return 2
	}

	var q *tqbf.QBF
	switch {
	case *random:
		q = tqbf.Random(rand.New(rand.NewSource(*seed)), *n, *clauses)
	case flag.NArg() == 1:
		var err error
		q, err = tqbf.Parse(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratqbf:", err)
			return 2
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ratqbf [flags] 'forall u0 exists e1 forall u1 : (u0 | ~e1)'")
		flag.PrintDefaults()
		return 2
	}
	ctx, stop := obsf.Context()
	defer stop()
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratqbf:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ratqbf:", err)
		}
	}()
	root := sess.Tracer.Start("ratqbf", nil)
	defer root.End()

	q = q.Normalize()
	fmt.Printf("formula:  %s\n", q)
	truth := q.Eval()
	fmt.Printf("QBF eval: %v\n", truth)

	rspan := root.Child("reduce")
	sys, err := tqbf.Reduce(q)
	rspan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratqbf:", err)
		return 2
	}
	fmt.Printf("system:   %d shared variables, class %s, PureRA=%v\n",
		len(sys.Vars), lang.Classify(sys), lang.PureRA(sys))
	if *dump {
		fmt.Println(strings.TrimSpace(lang.Print(sys)))
	}
	v, err := simplified.New(sys, simplified.Options{
		Workers: obsf.Workers,
		Trace:   root,
		Metrics: sess.Metrics,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratqbf:", err)
		return 2
	}
	res := v.VerifyContext(ctx)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "ratqbf: interrupted (%v); verdict unknown\n", res.Err)
		return 2
	}
	fmt.Printf("verifier: unsafe=%v (env-configs=%d, env-msgs=%d, saturation-steps=%d)\n",
		res.Unsafe, res.Stats.EnvConfigs, res.Stats.EnvMsgs, res.Stats.SaturationSteps)
	if res.Unsafe != truth {
		fmt.Println("MISMATCH: Theorem 5.1 violated — this is a bug")
		return 2
	}
	fmt.Println("agreement: verifier verdict matches QBF truth (Theorem 5.1)")
	return 0
}
