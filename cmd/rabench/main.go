// Command rabench regenerates the paper's tables and figures and the
// repository's experiment suite (see EXPERIMENTS.md for the index), and
// merges observability artifacts into machine-readable run reports.
//
// Usage:
//
//	rabench [-j N] [-timeout D] [table|table1|corpus|fig3|fig4|fig5|mincache|threads|ablations|robust|scaling|gap|budget|slice|parallel|cache|all]
//	rabench report trace.jsonl... [tracedir...] [metrics.json]
//	rabench fuzz [-seeds N] [-profile P] [-seed-base B] [-repro-dir D] [-seed-timeout T] [-selftest]
//
// report accepts any mix of trace files and directories of per-request
// server traces (raserved -trace-dir); spans are aggregated across all of
// them into per-phase count/total/min/max and p50/p95/p99 durations. A
// trailing .json argument is read as a -metrics-out snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"paramra/internal/bench"
	"paramra/internal/fuzzgen"
	"paramra/internal/lang"
	"paramra/internal/obs"
)

var (
	baseline  = flag.String("baseline", "", "parallel experiment: also write the rows to this JSON file")
	compareTo = flag.String("compare", "", "parallel experiment: compare against this baseline JSON and exit 1 on regression")
	tolerance = flag.Float64("tolerance", 2.0, "parallel -compare: allowed calibrated slowdown factor per entry")
	injectFlg = flag.String("inject-slowdown", "", "parallel -compare selftest: NAME=FACTOR[,NAME=FACTOR...] multiplies measured wall times")
	reqProcs  = flag.Bool("require-procs-match", false, "parallel -compare: fail (exit 1) when the baseline's recorded GOMAXPROCS differs from this run's")
	obsf      *obs.Flags
)

// runCtx carries the SIGINT/-timeout context to the experiments; runSpan is
// the tool-level trace span the per-experiment spans nest under.
var (
	runCtx  = context.Background()
	runSpan *obs.Span
)

const usage = "usage: rabench [-j N] [-timeout D] [table|table1|corpus|fig3|fig4|fig5|mincache|threads|ablations|robust|scaling|gap|budget|slice|parallel|cache|all]\n" +
	"       rabench report trace.jsonl... [tracedir...] [metrics.json]\n" +
	"       rabench fuzz [-seeds N] [-profile P] [-seed-base B] [-repro-dir D] [-seed-timeout T] [-selftest]\n"

func main() {
	os.Exit(run())
}

func run() int {
	obsf = obs.RegisterFlags(flag.CommandLine)
	obsf.RegisterRunFlags(flag.CommandLine)
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	if what == "report" {
		return report(flag.Args()[1:])
	}

	ctx, stop := obsf.Context()
	defer stop()
	runCtx = ctx
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabench:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rabench:", err)
		}
	}()
	runSpan = sess.Tracer.Start("rabench", nil)
	defer runSpan.End()
	bench.SetInstrumentation(bench.Instrumentation{Trace: runSpan, Metrics: sess.Metrics})

	if what == "fuzz" {
		if err := fuzz(flag.Args()[1:], sess.Metrics); err != nil {
			if errors.Is(err, errFuzzUsage) {
				fmt.Fprintln(os.Stderr, "rabench fuzz:", err)
				return 2
			}
			fmt.Fprintln(os.Stderr, "rabench fuzz:", err)
			return 1
		}
		return 0
	}

	run := map[string]func() error{
		"table":     classTable,
		"table1":    table1,
		"corpus":    corpus,
		"fig3":      fig3,
		"fig4":      fig4,
		"fig5":      fig5,
		"mincache":  mincache,
		"cache":     vcache,
		"threads":   threads,
		"ablations": ablations,
		"robust":    robust,
		"scaling":   scaling,
		"gap":       gap,
		"budget":    budget,
		"slice":     slice_,
		"parallel":  parallel,
	}
	// timed wraps one experiment in a child span named after it.
	timed := func(name string, f func() error) error {
		span := runSpan.Child(name)
		err := f()
		span.End()
		return err
	}
	if what == "all" {
		for _, name := range []string{"table", "table1", "corpus", "fig3", "fig4", "fig5", "mincache", "threads", "ablations", "robust", "scaling", "gap", "budget", "slice", "parallel", "cache"} {
			if err := timed(name, run[name]); err != nil {
				fmt.Fprintf(os.Stderr, "rabench %s: %v\n", name, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	}
	f, ok := run[what]
	if !ok {
		fmt.Fprint(os.Stderr, usage)
		return 2
	}
	if err := timed(what, f); err != nil {
		fmt.Fprintf(os.Stderr, "rabench %s: %v\n", what, err)
		return 1
	}
	return 0
}

// report merges -trace-out JSONL files and/or directories of per-request
// server traces, plus an optional trailing -metrics-out JSON snapshot, into
// one machine-readable run report on stdout.
func report(args []string) int {
	if len(args) < 1 {
		fmt.Fprint(os.Stderr, usage)
		return 2
	}
	metrics := ""
	if last := args[len(args)-1]; bench.IsMetricsArg(last) {
		metrics = last
		args = args[:len(args)-1]
	}
	traces, err := bench.ExpandTraceArgs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabench report:", err)
		return 2
	}
	rep, err := bench.BuildMergedRunReport(traces, metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabench report:", err)
		return 2
	}
	if err := rep.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rabench report:", err)
		return 2
	}
	for _, p := range rep.TopPhases(3) {
		fmt.Fprintf(os.Stderr, "rabench report: %-24s %4d span(s)  total %s  p50 %s  p95 %s  p99 %s\n",
			p.Name, p.Count, time.Duration(p.TotalNs).Round(time.Microsecond),
			time.Duration(p.P50Ns).Round(time.Microsecond),
			time.Duration(p.P95Ns).Round(time.Microsecond),
			time.Duration(p.P99Ns).Round(time.Microsecond))
	}
	return 0
}

// errFuzzUsage marks bad fuzz invocations (exit 2, like every other
// usage error) as opposed to campaign findings (exit 1).
var errFuzzUsage = errors.New("usage error")

// fuzz runs a differential fuzzing campaign: random systems through every
// backend, cross-checked, disagreements shrunk to minimal repros. A non-nil
// error (and exit 1) reports unresolved disagreements — the campaign is a
// correctness gate, not just a report.
func fuzz(args []string, metrics *obs.Registry) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seeds := fs.Int("seeds", 500, "number of systems to generate and cross-check")
	profile := fs.String("profile", "default", "system shape: "+strings.Join(fuzzgen.ProfileNames(), "|"))
	seedBase := fs.Int64("seed-base", 0, "first seed of the campaign (seeds are seed-base..seed-base+seeds-1)")
	reproDir := fs.String("repro-dir", "", "persist shrunk disagreements as commented .ra files under this directory")
	seedTimeout := fs.Duration("seed-timeout", 10*time.Second, "oracle budget per seed (a seed hitting it is inconclusive, not a failure)")
	selftest := fs.Bool("selftest", false, "inject a lying Datalog backend to prove the harness detects and minimizes disagreements")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errFuzzUsage, err)
	}
	prof, ok := fuzzgen.ProfileByName(*profile)
	if !ok {
		return fmt.Errorf("%w: unknown profile %q (have %s)", errFuzzUsage, *profile, strings.Join(fuzzgen.ProfileNames(), ", "))
	}

	var check fuzzgen.CheckOptions
	if *selftest {
		check.InjectFault = func(backend string, _ *lang.System, unsafe bool) bool {
			if backend == fuzzgen.BackendDatalog {
				return !unsafe
			}
			return unsafe
		}
		// The injected fault makes the concrete backends disagree too;
		// narrowing to fixpoint-vs-datalog keeps the selftest fast.
		check.NoConcrete = true
		check.NoDeadlocks = true
		check.NoPrepass = true
		check.NoCache = true
	}

	res, err := fuzzgen.Campaign(runCtx, fuzzgen.CampaignOptions{
		Seeds:       *seeds,
		SeedBase:    *seedBase,
		Profile:     prof,
		Check:       check,
		SeedTimeout: *seedTimeout,
		ReproDir:    *reproDir,
		Log:         os.Stderr,
		Trace:       runSpan,
		Metrics:     metrics,
	})
	if err != nil {
		return err
	}

	fmt.Printf("fuzz: %d/%d seeds checked (profile %s), %d disagreement(s), %d timed out\n",
		res.Seeds, *seeds, prof.Name, res.Disagreed, res.TimedOut)
	classes := make([]string, 0, len(res.ByClass))
	for c := range res.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Printf("  %5d  %s\n", res.ByClass[c], c)
	}
	for _, r := range res.Repros {
		fmt.Printf("repro: seed %d kind %s -> %d threads / %d stmts%s\n",
			r.Seed, r.Kind, r.Threads, r.Stmts, reproPath(r.Path))
	}
	if res.Cancelled {
		return fmt.Errorf("campaign cancelled after %d seeds", res.Seeds)
	}
	if *selftest {
		if res.Disagreed == 0 {
			return fmt.Errorf("selftest: injected fault produced no disagreement")
		}
		fmt.Println("selftest: injected fault detected and shrunk")
		return nil
	}
	if res.Disagreed > 0 {
		return fmt.Errorf("%d unresolved disagreement(s)", res.Disagreed)
	}
	return nil
}

func reproPath(p string) string {
	if p == "" {
		return ""
	}
	return " -> " + p
}

// parallel measures the layered engine's scaling over worker counts. With
// -compare it becomes the bench regression gate: re-measure, calibrate to
// the machine, and fail on entries slower than the baseline beyond the
// tolerance (or with drifted deterministic macro-state counts).
func parallel() error {
	counts := []int{1, 2, 4, 8}
	if obsf.Workers > 0 {
		counts = []int{1, obsf.Workers}
	}
	if *compareTo != "" {
		inject, err := bench.ParseInjectSlowdown(*injectFlg)
		if err != nil {
			return err
		}
		rep, err := bench.CompareParallel(runCtx, *compareTo, counts, *tolerance, inject)
		if err != nil {
			return err
		}
		fmt.Print(bench.CompareTable(rep).String())
		if rep.ProcsWarning != "" {
			fmt.Fprintln(os.Stderr, "rabench parallel: WARNING:", rep.ProcsWarning)
			if *reqProcs {
				return fmt.Errorf("baseline/run GOMAXPROCS mismatch (%s)", rep.ProcsWarning)
			}
		}
		if len(rep.Regressions) > 0 {
			for _, r := range rep.Regressions {
				fmt.Fprintln(os.Stderr, "regression:", r)
			}
			return fmt.Errorf("%d entr%s regressed against %s",
				len(rep.Regressions), plural(len(rep.Regressions), "y", "ies"), *compareTo)
		}
		fmt.Printf("no regression against %s\n", *compareTo)
		return nil
	}
	rows, err := bench.ParallelExperiment(runCtx, counts)
	if err != nil {
		return err
	}
	fmt.Print(bench.ParallelTable(rows).String())
	if *baseline != "" {
		if err := bench.WriteParallelBaseline(runCtx, *baseline, counts); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", *baseline)
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func table1() error {
	fmt.Print(bench.Table1().String())
	return nil
}

// classTable prints the per-thread lang.Classify signature (acyc/nocas) of
// every corpus system, the static counterpart of the verdict table.
func classTable() error {
	fmt.Print(bench.ClassTable().String())
	return nil
}

func corpus() error {
	reps, err := bench.RunCorpus()
	if err != nil {
		return err
	}
	fmt.Print(bench.CorpusTable(reps).String())
	return nil
}

func fig3() error {
	rows, err := bench.Fig3(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.Fig3Table(rows).String())
	return nil
}

func fig4() error {
	s, err := bench.Fig4()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func fig5() error {
	rows, err := bench.Fig5(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.Fig5Table(rows).String())
	return nil
}

// mincache is E8, the Lemma 4.4 minimal-Datalog-cache experiment (formerly
// the `cache` subcommand; renamed when the verdict cache took that name).
func mincache() error {
	rows, err := bench.CacheExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.CacheTable(rows).String())
	return nil
}

// vcache is E20: the content-addressed verdict cache on the corpus.
func vcache() error {
	rows, err := bench.VerdictCacheExperiment(runCtx)
	if err != nil {
		return err
	}
	fmt.Print(bench.VerdictCacheTable(rows).String())
	return nil
}

func threads() error {
	rows, err := bench.ThreadBoundExperiment(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.ThreadTable(rows).String())
	return nil
}

func ablations() error {
	rows, err := bench.Ablations()
	if err != nil {
		return err
	}
	fmt.Print(bench.AblationTable(rows).String())
	return nil
}

func robust() error {
	rows, err := bench.RobustnessExperiment(2_000_000)
	if err != nil {
		return err
	}
	fmt.Print(bench.RobustTable(rows).String())
	return nil
}

func scaling() error {
	rows, err := bench.ScalingExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.ScalingTable(rows).String())
	return nil
}

func gap() error {
	rows, err := bench.GapExperiment(5, 2_000_000)
	if err != nil {
		return err
	}
	fmt.Print(bench.GapTable(rows).String())
	return nil
}

func budget() error {
	rows, err := bench.BudgetAblation()
	if err != nil {
		return err
	}
	fmt.Print(bench.BudgetTable(rows).String())
	return nil
}

func slice_() error {
	rows, err := bench.SliceExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.SliceTable(rows).String())
	return nil
}
