// Command rabench regenerates the paper's tables and figures and the
// repository's experiment suite (see EXPERIMENTS.md for the index).
//
// Usage:
//
//	rabench [-j N] [-timeout D] [table1|corpus|fig3|fig4|fig5|cache|threads|ablations|robust|scaling|gap|budget|slice|parallel|all]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"paramra/internal/bench"
)

var (
	workers  = flag.Int("j", 0, "worker goroutines for the parallel experiment (0 = GOMAXPROCS)")
	timeout  = flag.Duration("timeout", 0, "overall time limit (0 = none), e.g. 10m")
	baseline = flag.String("baseline", "", "parallel experiment: also write the rows to this JSON file")
)

// runCtx carries the SIGINT/-timeout context to the experiments.
var runCtx = context.Background()

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	runCtx = ctx

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	run := map[string]func() error{
		"table1":    table1,
		"corpus":    corpus,
		"fig3":      fig3,
		"fig4":      fig4,
		"fig5":      fig5,
		"cache":     cache,
		"threads":   threads,
		"ablations": ablations,
		"robust":    robust,
		"scaling":   scaling,
		"gap":       gap,
		"budget":    budget,
		"slice":     slice_,
		"parallel":  parallel,
	}
	if what == "all" {
		for _, name := range []string{"table1", "corpus", "fig3", "fig4", "fig5", "cache", "threads", "ablations", "robust", "scaling", "gap", "budget", "slice", "parallel"} {
			if err := run[name](); err != nil {
				fmt.Fprintf(os.Stderr, "rabench %s: %v\n", name, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	}
	f, ok := run[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "usage: rabench [-j N] [-timeout D] [table1|corpus|fig3|fig4|fig5|cache|threads|ablations|robust|scaling|gap|budget|slice|parallel|all]\n")
		return 2
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "rabench %s: %v\n", what, err)
		return 1
	}
	return 0
}

// parallel measures the layered engine's scaling over worker counts.
func parallel() error {
	counts := []int{1, 2, 4, 8}
	if *workers > 0 {
		counts = []int{1, *workers}
	}
	rows, err := bench.ParallelExperiment(runCtx, counts)
	if err != nil {
		return err
	}
	fmt.Print(bench.ParallelTable(rows).String())
	if *baseline != "" {
		if err := bench.WriteParallelBaseline(runCtx, *baseline, counts); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", *baseline)
	}
	return nil
}

func table1() error {
	fmt.Print(bench.Table1().String())
	return nil
}

func corpus() error {
	reps, err := bench.RunCorpus()
	if err != nil {
		return err
	}
	fmt.Print(bench.CorpusTable(reps).String())
	return nil
}

func fig3() error {
	rows, err := bench.Fig3(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.Fig3Table(rows).String())
	return nil
}

func fig4() error {
	s, err := bench.Fig4()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func fig5() error {
	rows, err := bench.Fig5(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.Fig5Table(rows).String())
	return nil
}

func cache() error {
	rows, err := bench.CacheExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.CacheTable(rows).String())
	return nil
}

func threads() error {
	rows, err := bench.ThreadBoundExperiment(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.ThreadTable(rows).String())
	return nil
}

func ablations() error {
	rows, err := bench.Ablations()
	if err != nil {
		return err
	}
	fmt.Print(bench.AblationTable(rows).String())
	return nil
}

func robust() error {
	rows, err := bench.RobustnessExperiment(2_000_000)
	if err != nil {
		return err
	}
	fmt.Print(bench.RobustTable(rows).String())
	return nil
}

func scaling() error {
	rows, err := bench.ScalingExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.ScalingTable(rows).String())
	return nil
}

func gap() error {
	rows, err := bench.GapExperiment(5, 2_000_000)
	if err != nil {
		return err
	}
	fmt.Print(bench.GapTable(rows).String())
	return nil
}

func budget() error {
	rows, err := bench.BudgetAblation()
	if err != nil {
		return err
	}
	fmt.Print(bench.BudgetTable(rows).String())
	return nil
}

func slice_() error {
	rows, err := bench.SliceExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.SliceTable(rows).String())
	return nil
}
