// Command rabench regenerates the paper's tables and figures and the
// repository's experiment suite (see EXPERIMENTS.md for the index), and
// merges observability artifacts into machine-readable run reports.
//
// Usage:
//
//	rabench [-j N] [-timeout D] [table1|corpus|fig3|fig4|fig5|cache|threads|ablations|robust|scaling|gap|budget|slice|parallel|all]
//	rabench report trace.jsonl [metrics.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"paramra/internal/bench"
	"paramra/internal/obs"
)

var (
	baseline = flag.String("baseline", "", "parallel experiment: also write the rows to this JSON file")
	obsf     *obs.Flags
)

// runCtx carries the SIGINT/-timeout context to the experiments; runSpan is
// the tool-level trace span the per-experiment spans nest under.
var (
	runCtx  = context.Background()
	runSpan *obs.Span
)

const usage = "usage: rabench [-j N] [-timeout D] [table1|corpus|fig3|fig4|fig5|cache|threads|ablations|robust|scaling|gap|budget|slice|parallel|all]\n" +
	"       rabench report trace.jsonl [metrics.json]\n"

func main() {
	os.Exit(run())
}

func run() int {
	obsf = obs.RegisterFlags(flag.CommandLine)
	obsf.RegisterRunFlags(flag.CommandLine)
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	if what == "report" {
		return report(flag.Args()[1:])
	}

	ctx, stop := obsf.Context()
	defer stop()
	runCtx = ctx
	sess, err := obsf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabench:", err)
		return 2
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rabench:", err)
		}
	}()
	runSpan = sess.Tracer.Start("rabench", nil)
	defer runSpan.End()
	bench.SetInstrumentation(bench.Instrumentation{Trace: runSpan, Metrics: sess.Metrics})

	run := map[string]func() error{
		"table1":    table1,
		"corpus":    corpus,
		"fig3":      fig3,
		"fig4":      fig4,
		"fig5":      fig5,
		"cache":     cache,
		"threads":   threads,
		"ablations": ablations,
		"robust":    robust,
		"scaling":   scaling,
		"gap":       gap,
		"budget":    budget,
		"slice":     slice_,
		"parallel":  parallel,
	}
	// timed wraps one experiment in a child span named after it.
	timed := func(name string, f func() error) error {
		span := runSpan.Child(name)
		err := f()
		span.End()
		return err
	}
	if what == "all" {
		for _, name := range []string{"table1", "corpus", "fig3", "fig4", "fig5", "cache", "threads", "ablations", "robust", "scaling", "gap", "budget", "slice", "parallel"} {
			if err := timed(name, run[name]); err != nil {
				fmt.Fprintf(os.Stderr, "rabench %s: %v\n", name, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	}
	f, ok := run[what]
	if !ok {
		fmt.Fprint(os.Stderr, usage)
		return 2
	}
	if err := timed(what, f); err != nil {
		fmt.Fprintf(os.Stderr, "rabench %s: %v\n", what, err)
		return 1
	}
	return 0
}

// report merges a -trace-out JSONL file and an optional -metrics-out JSON
// snapshot into one machine-readable run report on stdout.
func report(args []string) int {
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprint(os.Stderr, usage)
		return 2
	}
	trace := args[0]
	metrics := ""
	if len(args) == 2 {
		metrics = args[1]
	}
	rep, err := bench.BuildRunReport(trace, metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rabench report:", err)
		return 2
	}
	if err := rep.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rabench report:", err)
		return 2
	}
	for _, p := range rep.TopPhases(3) {
		fmt.Fprintf(os.Stderr, "rabench report: %-24s %4d span(s)  total %s\n",
			p.Name, p.Count, time.Duration(p.TotalNs).Round(time.Microsecond))
	}
	return 0
}

// parallel measures the layered engine's scaling over worker counts.
func parallel() error {
	counts := []int{1, 2, 4, 8}
	if obsf.Workers > 0 {
		counts = []int{1, obsf.Workers}
	}
	rows, err := bench.ParallelExperiment(runCtx, counts)
	if err != nil {
		return err
	}
	fmt.Print(bench.ParallelTable(rows).String())
	if *baseline != "" {
		if err := bench.WriteParallelBaseline(runCtx, *baseline, counts); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", *baseline)
	}
	return nil
}

func table1() error {
	fmt.Print(bench.Table1().String())
	return nil
}

func corpus() error {
	reps, err := bench.RunCorpus()
	if err != nil {
		return err
	}
	fmt.Print(bench.CorpusTable(reps).String())
	return nil
}

func fig3() error {
	rows, err := bench.Fig3(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.Fig3Table(rows).String())
	return nil
}

func fig4() error {
	s, err := bench.Fig4()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func fig5() error {
	rows, err := bench.Fig5(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.Fig5Table(rows).String())
	return nil
}

func cache() error {
	rows, err := bench.CacheExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.CacheTable(rows).String())
	return nil
}

func threads() error {
	rows, err := bench.ThreadBoundExperiment(6)
	if err != nil {
		return err
	}
	fmt.Print(bench.ThreadTable(rows).String())
	return nil
}

func ablations() error {
	rows, err := bench.Ablations()
	if err != nil {
		return err
	}
	fmt.Print(bench.AblationTable(rows).String())
	return nil
}

func robust() error {
	rows, err := bench.RobustnessExperiment(2_000_000)
	if err != nil {
		return err
	}
	fmt.Print(bench.RobustTable(rows).String())
	return nil
}

func scaling() error {
	rows, err := bench.ScalingExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.ScalingTable(rows).String())
	return nil
}

func gap() error {
	rows, err := bench.GapExperiment(5, 2_000_000)
	if err != nil {
		return err
	}
	fmt.Print(bench.GapTable(rows).String())
	return nil
}

func budget() error {
	rows, err := bench.BudgetAblation()
	if err != nil {
		return err
	}
	fmt.Print(bench.BudgetTable(rows).String())
	return nil
}

func slice_() error {
	rows, err := bench.SliceExperiment()
	if err != nil {
		return err
	}
	fmt.Print(bench.SliceTable(rows).String())
	return nil
}
