package paramra_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"paramra"
)

// TestDeadlineErrorShape pins the deadline half of the cancellation
// contract (the context.Canceled half lives in cancel_test.go): when a
// context deadline expires, every backend's error must satisfy
// errors.Is(err, context.DeadlineExceeded). The raserved wire API depends on
// this to map budget exhaustion deterministically onto 408/504 — an error
// that merely mentions the deadline in its text would break the mapping.
func TestDeadlineErrorShape(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()

	backends := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"fixpoint", func(ctx context.Context) error {
			_, err := paramra.Verify(ctx, sys, paramra.Options{})
			return err
		}},
		{"datalog", func(ctx context.Context) error {
			_, err := paramra.Verify(ctx, sys, paramra.Options{Datalog: true})
			return err
		}},
		{"prepass", func(ctx context.Context) error {
			_, err := paramra.Verify(ctx, sys, paramra.Options{Prepass: true})
			return err
		}},
		{"concrete", func(ctx context.Context) error {
			_, err := paramra.VerifyInstance(ctx, sys, 1, paramra.Options{})
			return err
		}},
		{"deadlocks", func(ctx context.Context) error {
			_, err := paramra.FindDeadlocks(ctx, sys, 1, paramra.Options{})
			return err
		}},
		{"inventory", func(ctx context.Context) error {
			_, err := paramra.Inventory(ctx, sys, paramra.Options{})
			return err
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			err := b.run(expired)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("expired deadline: err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
			}
		})
	}
}

// TestDeadlineErrorShapeConfirm pins that a deadline expiring inside
// ConfirmViolation surfaces through ConfirmError.Unwrap, so errors.Is still
// holds on the wrapped error.
func TestDeadlineErrorShapeConfirm(t *testing.T) {
	sys, err := paramra.Parse(prodcons)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil || !res.Unsafe {
		t.Fatalf("prodcons setup: unsafe=%v err=%v", res.Unsafe, err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, _, cerr := paramra.ConfirmViolation(expired, sys, res, 4, paramra.Options{})
	if !errors.Is(cerr, context.DeadlineExceeded) {
		t.Fatalf("confirm under expired deadline: err = %v, want context.DeadlineExceeded", cerr)
	}
	var ce *paramra.ConfirmError
	if !errors.As(cerr, &ce) {
		t.Fatalf("confirm error is not a *ConfirmError: %T", cerr)
	}
}

// TestDeadlineErrorShapeCorpus sweeps the shipped corpus at a selection of
// tight deadlines. With the prepass enabled a system may be decided before
// the first context check, so each run must either finish completely or fail
// with context.DeadlineExceeded — nothing in between (no bare verdicts on a
// dead context, no unwrappable errors). With the prepass disabled and an
// already-expired deadline, the error case is required.
func TestDeadlineErrorShapeCorpus(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "systems"))
	if err != nil {
		t.Fatal(err)
	}
	budgets := []time.Duration{0, 50 * time.Microsecond, time.Millisecond}
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".ra") {
			continue
		}
		sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(ent.Name(), func(t *testing.T) {
			for _, budget := range budgets {
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				res, err := paramra.Verify(ctx, sys, paramra.Options{Prepass: true})
				cancel()
				switch {
				case err == nil:
					if !res.Unsafe && !res.Complete {
						t.Errorf("budget %v: no error but incomplete verdict %+v", budget, res)
					}
				case errors.Is(err, context.DeadlineExceeded):
					// The deterministic outcome the server maps to 408/504.
				default:
					t.Errorf("budget %v: err = %v, want nil or context.DeadlineExceeded", budget, err)
				}
			}

			// Expired deadline, fast path off: the error is mandatory.
			ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
			_, err := paramra.Verify(ctx, sys, paramra.Options{})
			cancel()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("expired deadline, prepass off: err = %v, want context.DeadlineExceeded", err)
			}
		})
	}
}
