package paramra_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"paramra"
	"paramra/internal/bench"
	"paramra/internal/obs"
)

// Integration tests of the observability layer: the trace a full Verify run
// emits, the Wall/Workers contract of Stats, the final-Progress-snapshot
// contract, and the CLI surface (-trace-out, flag uniformity, rabench
// report, the checked-in parallel baseline).

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/trace_golden.jsonl from the current tracer output")

func mustParse(t *testing.T, src string) *paramra.System {
	t.Helper()
	sys, err := paramra.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sys
}

// TestStatsWallWorkers pins the satellite contract that every backend
// populates Stats.Wall and Stats.Workers on every path, including the
// fixpoint's early-violation exit that never reaches the engine.
func TestStatsWallWorkers(t *testing.T) {
	ctx := context.Background()
	safe := mustParse(t, cliSafe)
	unsafeSys := mustParse(t, cliProdCons)

	t.Run("fixpoint", func(t *testing.T) {
		res, err := paramra.Verify(ctx, safe, paramra.Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Wall <= 0 || res.Stats.Workers != 2 {
			t.Errorf("Wall=%v Workers=%d, want Wall>0 Workers=2", res.Stats.Wall, res.Stats.Workers)
		}
	})
	t.Run("fixpoint-default-workers", func(t *testing.T) {
		res, err := paramra.Verify(ctx, unsafeSys, paramra.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := runtime.GOMAXPROCS(0); res.Stats.Workers != want {
			t.Errorf("Workers=%d, want GOMAXPROCS=%d", res.Stats.Workers, want)
		}
		if res.Stats.Wall <= 0 {
			t.Errorf("Wall=%v, want >0", res.Stats.Wall)
		}
	})
	t.Run("fixpoint-early-violation", func(t *testing.T) {
		// Goal value 0 is in the initial memory, so the run ends before the
		// engine starts — the path that used to leave Wall/Workers zero.
		res, err := paramra.Verify(ctx, safe, paramra.Options{
			Goal: &paramra.Goal{Var: "x", Val: 0}, Parallelism: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Unsafe || res.Stats.MacroStates != 1 {
			t.Fatalf("unexpected early-path result: %+v", res)
		}
		if res.Stats.Wall <= 0 || res.Stats.Workers != 3 {
			t.Errorf("Wall=%v Workers=%d, want Wall>0 Workers=3", res.Stats.Wall, res.Stats.Workers)
		}
	})
	t.Run("datalog", func(t *testing.T) {
		res, err := paramra.Verify(ctx, safe, paramra.Options{Datalog: true, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Wall <= 0 || res.Stats.Workers < 1 {
			t.Errorf("Wall=%v Workers=%d, want Wall>0 Workers>=1", res.Stats.Wall, res.Stats.Workers)
		}
	})
	t.Run("concrete", func(t *testing.T) {
		res, err := paramra.VerifyInstance(ctx, safe, 1, paramra.Options{
			MaxStates: 100_000, Parallelism: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Wall <= 0 || res.Stats.Workers != 2 {
			t.Errorf("Wall=%v Workers=%d, want Wall>0 Workers=2", res.Stats.Wall, res.Stats.Workers)
		}
	})
}

// progressRecorder collects Progress snapshots. The callback runs on a
// dedicated monitor goroutine, the terminal emission on the caller's; the
// mutex makes the recording race-free without relying on the join.
type progressRecorder struct {
	mu    sync.Mutex
	snaps []paramra.Stats
}

func (p *progressRecorder) cb(s paramra.Stats) {
	p.mu.Lock()
	p.snaps = append(p.snaps, s)
	p.mu.Unlock()
}

// cumulative projects the counter group that must never decrease across
// snapshots (cumulative counts and high-water marks; Wall excluded only
// because it is a duration, monotone trivially).
func cumulative(s paramra.Stats) [12]int64 {
	return [12]int64{
		int64(s.MacroStates), int64(s.DisTransitions), int64(s.EnvConfigs),
		int64(s.EnvMsgs), int64(s.SaturationSteps),
		int64(s.States), int64(s.Transitions),
		int64(s.Skeletons), int64(s.FixpointRounds), int64(s.DatalogAtoms),
		s.DedupHits, s.PeakFrontier,
	}
}

func checkProgress(t *testing.T, rec *progressRecorder, final paramra.Stats) {
	t.Helper()
	rec.mu.Lock()
	snaps := rec.snaps
	rec.mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no Progress emissions")
	}
	if last := snaps[len(snaps)-1]; last != final {
		t.Errorf("final Progress snapshot %+v != returned Stats %+v", last, final)
	}
	for i := 1; i < len(snaps); i++ {
		prev, cur := cumulative(snaps[i-1]), cumulative(snaps[i])
		for k := range cur {
			if cur[k] < prev[k] {
				t.Errorf("snapshot %d: counter %d decreased: %d -> %d", i, k, prev[k], cur[k])
			}
		}
	}
}

// TestFinalProgressEqualsStats pins the Progress contract for all three
// backends at Parallelism 8 over shipped corpus systems: snapshots are
// monotonically non-decreasing and the last one is exactly the returned
// Stats.
func TestFinalProgressEqualsStats(t *testing.T) {
	ctx := context.Background()

	for _, name := range []string{"mp.ra", "prodcons.ra", "peterson.ra"} {
		t.Run("fixpoint/"+name, func(t *testing.T) {
			sys, err := paramra.ParseFile(filepath.Join("testdata", "systems", name))
			if err != nil {
				t.Fatal(err)
			}
			rec := &progressRecorder{}
			res, err := paramra.Verify(ctx, sys, paramra.Options{Parallelism: 8, Progress: rec.cb})
			if err != nil {
				t.Fatal(err)
			}
			checkProgress(t, rec, res.Stats)
		})
	}

	t.Run("datalog", func(t *testing.T) {
		rec := &progressRecorder{}
		res, err := paramra.Verify(ctx, mustParse(t, cliSafe), paramra.Options{
			Datalog: true, Parallelism: 8, Progress: rec.cb,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkProgress(t, rec, res.Stats)
	})

	t.Run("concrete", func(t *testing.T) {
		rec := &progressRecorder{}
		res, err := paramra.VerifyInstance(ctx, mustParse(t, cliProdCons), 2, paramra.Options{
			MaxStates: 200_000, Parallelism: 8, Progress: rec.cb,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkProgress(t, rec, res.Stats)
	})
}

// TestTraceGolden runs a 1-worker Verify of a fixed system under a
// deterministic counter clock and compares the emitted JSONL byte-for-byte
// against the checked-in golden file. Span IDs, nesting, names and attrs
// are all deterministic at Parallelism 1; regenerate with
// `go test -run TestTraceGolden -update-golden`.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	var tick int64
	tr := obs.NewTracerClock(&buf, func() int64 { tick += 1000; return tick })

	res, err := paramra.Verify(context.Background(), mustParse(t, cliSafe), paramra.Options{
		Parallelism: 1, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsafe {
		t.Fatal("fixture became unsafe; golden trace assumptions broken")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("emitted trace fails schema validation: %v", err)
	}

	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestTraceDeterministicSpanIDs: the span structure (IDs, parents, names)
// is identical at every worker count; only timestamps and timing-dependent
// attrs may differ.
func TestTraceDeterministicSpanIDs(t *testing.T) {
	shape := func(workers int) []string {
		var buf bytes.Buffer
		var tick int64
		tr := obs.NewTracerClock(&buf, func() int64 { tick++; return tick })
		if _, err := paramra.Verify(context.Background(), mustParse(t, cliProdCons), paramra.Options{
			Parallelism: workers, Tracer: tr,
		}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		spans, err := obs.ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range spans {
			out = append(out, strings.Join([]string{
				itoa(int(s.ID)), itoa(int(s.Parent)), s.Name,
			}, "/"))
		}
		return out
	}
	base := shape(1)
	for _, j := range []int{2, 8} {
		got := shape(j)
		if strings.Join(got, "\n") != strings.Join(base, "\n") {
			t.Errorf("span structure at j=%d differs from j=1:\n%v\nvs\n%v", j, got, base)
		}
	}
}

// TestCLITraceOut runs raverify with -trace-out/-metrics-out and validates
// the artifacts: the JSONL passes schema validation, covers every pipeline
// phase, and its terminal fixpoint counters agree with the metrics
// snapshot; rabench report then merges both.
func TestCLITraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	path := writeTemp(t, "pc.ra", cliProdCons)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")

	// -prepass=false: this test pins the trace shape of the full fixpoint
	// pipeline, which the static prepass would otherwise short-circuit.
	out, code := runTool(t, "raverify", "-prepass=false", "-j", "2", "-trace-out", trace, "-metrics-out", metrics, path)
	if code != 1 || !strings.Contains(out, "UNSAFE") {
		t.Fatalf("raverify: code=%d out=%s", code, out)
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ParseTrace(f)
	f.Close()
	if err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	byName := map[string][]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, phase := range []string{
		"raverify", "parse", "verify", "well-formedness",
		"fixpoint", "init-saturate", "layered", "layer",
	} {
		if len(byName[phase]) == 0 {
			t.Errorf("trace missing phase span %q", phase)
		}
	}
	if root := byName["raverify"]; len(root) != 1 || root[0].Parent != 0 {
		t.Errorf("expected a single root raverify span, got %+v", root)
	}

	var snap map[string]any
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	states, ok := snap["paramra_engine_states"].(float64)
	if !ok || states < 1 {
		t.Fatalf("metrics snapshot missing paramra_engine_states: %v", snap)
	}
	if fp := byName["fixpoint"]; len(fp) == 1 {
		if ms, ok := fp[0].Attrs["macro_states"].(float64); !ok || ms != states {
			t.Errorf("fixpoint macro_states attr %v != paramra_engine_states %v", fp[0].Attrs["macro_states"], states)
		}
	}

	rep, code := runTool(t, "rabench", "report", trace, metrics)
	if code != 0 {
		t.Fatalf("rabench report: code=%d out=%s", code, rep)
	}
	var report struct {
		Spans  int              `json:"spans"`
		WallNs int64            `json:"wallNs"`
		Phases []map[string]any `json:"phases"`
	}
	jsonPart := rep[:strings.Index(rep, "\n}")+2]
	if err := json.Unmarshal([]byte(jsonPart), &report); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, rep)
	}
	if report.Spans != len(spans) || report.WallNs <= 0 || len(report.Phases) == 0 {
		t.Errorf("report %+v, want spans=%d wallNs>0 phases>0", report, len(spans))
	}
}

// TestCLIFlagUniformity: the five run tools spell -j/-timeout and the
// observability group identically (same names, same help text); ravet
// carries the observability group only.
func TestCLIFlagUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	obsHelp := []string{
		"-trace-out", "write a JSONL phase-span trace to this file",
		"-metrics-addr", "serve Prometheus /metrics and expvar /debug/vars on this address",
		"-metrics-out", "write a JSON metrics snapshot to this file on exit",
		"-pprof-addr", "serve net/http/pprof on this address",
		"-cpuprofile", "write a CPU profile to this file",
		"-memprofile", "write a heap profile to this file on exit",
	}
	runHelp := []string{
		"worker goroutines (0 = GOMAXPROCS); verdicts are identical for every value",
		"overall time limit (0 = none), e.g. 30s",
	}
	for _, tool := range []string{"raverify", "raexplore", "radatalog", "ratqbf", "rabench"} {
		out, _ := runTool(t, tool, "-h")
		for _, want := range append(append([]string{}, obsHelp...), runHelp...) {
			if !strings.Contains(out, want) {
				t.Errorf("%s -h missing %q", tool, want)
			}
		}
	}
	out, _ := runTool(t, "ravet", "-h")
	for _, want := range obsHelp {
		if !strings.Contains(out, want) {
			t.Errorf("ravet -h missing %q", want)
		}
	}
	if strings.Contains(out, runHelp[0]) {
		t.Errorf("ravet -h unexpectedly registers the run flag group:\n%s", out)
	}
}

// TestParallelBaselineSmoke re-runs the parallel experiment's entries with
// observability disabled and checks the deterministic macro-state counts
// against the checked-in BENCH_parallel.json baseline.
func TestParallelBaselineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline smoke skipped in -short mode")
	}
	data, err := os.ReadFile("BENCH_parallel.json")
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		Rows []struct {
			Name        string `json:"name"`
			Workers     int    `json:"workers"`
			MacroStates int    `json:"macroStates"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for _, r := range baseline.Rows {
		want[r.Name] = r.MacroStates
	}
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}

	rows, err := bench.ParallelExperiment(context.Background(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, r := range rows {
		states, known := want[r.Name]
		if !known {
			continue
		}
		matched++
		if r.MacroStates != states {
			t.Errorf("%s (j=%d): macro-states %d, baseline %d", r.Name, r.Workers, r.MacroStates, states)
		}
	}
	if matched == 0 {
		t.Errorf("no experiment entry matched the baseline names %v", want)
	}
}
