package paramra_test

import (
	"context"
	"testing"

	"paramra/internal/fuzzgen"
)

// TestFuzzReprosStayFixed replays every shrunk repro the differential fuzzer
// has found (testdata/fuzz-repros/). Each file is a minimized system on which
// the backends once disagreed; after the fix all backends must agree, and a
// regression re-introducing the bug shows up as a disagreement here without
// having to re-run a fuzz campaign.
func TestFuzzReprosStayFixed(t *testing.T) {
	repros, err := fuzzgen.LoadRepros("testdata/fuzz-repros")
	if err != nil {
		t.Fatalf("LoadRepros: %v", err)
	}
	if len(repros) == 0 {
		t.Fatal("no repros found: testdata/fuzz-repros should hold the shrunk systems of previously fixed bugs")
	}
	for _, r := range repros {
		t.Run(r.Path, func(t *testing.T) {
			rep := fuzzgen.Check(context.Background(), r.System, fuzzgen.CheckOptions{})
			for _, d := range rep.Disagreements {
				t.Errorf("backends disagree again (%s): %s", d.Kind, d.Detail)
			}
		})
	}
}
