package paramra

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paramra/internal/absint"
	"paramra/internal/analysis"
	"paramra/internal/datalog"
	"paramra/internal/depgraph"
	"paramra/internal/encode"
	"paramra/internal/engine"
	"paramra/internal/lang"
	"paramra/internal/obs"
	"paramra/internal/ra"
	"paramra/internal/simplified"
)

// Core types re-exported from the language package.
type (
	// System is a parameterized system: shared variables, a data domain,
	// an env program and dis programs.
	System = lang.System
	// Program is a single thread's code.
	Program = lang.Program
	// SystemClass is the paper-notation classification of a system.
	SystemClass = lang.SystemClass
	// DependencyGraph is the Definition 1 dependency graph of a violation.
	DependencyGraph = depgraph.Graph
)

// Errors surfaced by Verify.
var (
	// ErrEnvCAS marks systems whose env threads use CAS (undecidable class,
	// Theorem 1.1).
	ErrEnvCAS = simplified.ErrEnvCAS
	// ErrDisCyclic marks systems with looping dis threads; set
	// Options.UnrollDis for a bounded under-approximation.
	ErrDisCyclic = simplified.ErrDisCyclic
)

// Parse reads a system in concrete syntax.
func Parse(src string) (*System, error) { return lang.ParseSystem(src) }

// ParseFile reads a system from a file. Syntax errors are prefixed with the
// file name, in the usual "file:line:col: message" shape.
func ParseFile(path string) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := Parse(string(data))
	if err != nil {
		var syn *lang.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("%s:%w", path, err)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sys, nil
}

// Format renders a system back into concrete syntax.
func Format(sys *System) string { return lang.Print(sys) }

// ThreadType is a single thread's classification (acyc/nocas) in the
// paper's notation.
type ThreadType = lang.ThreadType

// Classify computes the system class signature, e.g.
// "env(nocas) || dis_1(acyc)".
func Classify(sys *System) SystemClass { return lang.Classify(sys) }

// ClassifyProgram computes the type of a single thread program.
func ClassifyProgram(p *Program) ThreadType { return lang.ClassifyProgram(p) }

// Unroll returns a copy of the system with every dis-thread loop unrolled k
// times (a bounded-model-checking under-approximation; env loops are
// handled exactly by the verifier and left untouched).
func Unroll(sys *System, k int) *System { return lang.UnrollSystem(sys, k) }

// Diagnostic is one static-analysis finding (see cmd/ravet).
type Diagnostic = analysis.Diagnostic

// SliceStats reports the size reduction achieved by Slice.
type SliceStats = analysis.SliceStats

// Analyze runs the static lint rules over the system — the constant-
// propagation rules of internal/analysis plus the abstract-interpretation
// rules of internal/absint — and returns the merged findings sorted by
// source position. Callers that know the source file should set
// Diagnostic.File before printing.
func Analyze(sys *System) []Diagnostic {
	out := analysis.AnalyzeSystem(sys)
	out = append(out, absint.Lint(sys, out)...)
	analysis.SortDiagnostics(out)
	return out
}

// Slice returns a smaller system with the same parameterized safety verdict:
// it drops assignments to dead registers, statements at unreachable PCs,
// stores to write-only shared variables, and unused registers and variables.
// Variables named in keepVars survive even when removable (pass the goal
// variable of a Message Generation query). The input is not mutated.
func Slice(sys *System, keepVars ...string) (*System, SliceStats) {
	return analysis.Slice(sys, analysis.SliceOptions{KeepVars: keepVars})
}

// Goal switches verification to the Message Generation problem (§4.1): can
// a message with the given variable and value be generated?
type Goal struct {
	Var string
	Val int
}

// Options configures the verification entry points. The zero value is a
// sensible default: unlimited search, GOMAXPROCS workers, no progress
// reporting.
type Options struct {
	// MaxMacroStates caps the macro-state search of the fixpoint backend
	// (0 = unlimited). The context deadline is the primary resource limit;
	// this is a secondary cap.
	MaxMacroStates int
	// MaxStates caps concrete-instance exploration (VerifyInstance,
	// ConfirmViolation, FindDeadlocks; 0 = unlimited — beware, loops make
	// concrete state spaces infinite in general).
	MaxStates int
	// Goal, when non-nil, asks Message Generation instead of assert
	// reachability.
	Goal *Goal
	// UnrollDis, when positive, unrolls looping dis threads this many times
	// before verification (making the result an under-approximation for
	// such systems).
	UnrollDis int
	// Datalog selects the makeP → Datalog backend (Theorem 4.1) instead of
	// the integrated fixpoint engine. Slower; exposed for cross-checking
	// and experiments.
	Datalog bool
	// Prepass runs the static abstract-interpretation prepass first and
	// returns its verdict (Result.DecidedBy = "prepass") when it is
	// decisive, skipping the state-space search entirely. Sound on both
	// sides: SAFE proofs hold for every replica count (including systems
	// outside the decidable fragment), UNSAFE witnesses are concrete
	// replays. See Prepass for the standalone entry point.
	Prepass bool
	// DatalogHints grounds the Datalog encoding with abstract-value register
	// hints even when Prepass is off — the fuzz oracle uses it to exercise
	// the hinted grounding without the verdict fast path in front of it.
	// Prepass implies it.
	DatalogHints bool
	// MaxSkeletons caps dis-run enumeration for the Datalog backend.
	MaxSkeletons int
	// Parallelism is the number of worker goroutines (0 = GOMAXPROCS).
	// Verdicts, witnesses and §4.3 bounds of the fixpoint backend are
	// identical for every value.
	Parallelism int
	// Progress, when non-nil, receives periodic statistics snapshots from a
	// dedicated goroutine while a search runs. The last emission, sent just
	// before the entry point returns, is exactly the returned Stats.
	Progress func(Stats)
	// Tracer, when non-nil, records the run's phase spans — parse is the
	// caller's, then well-formedness, unroll, fixpoint/datalog/concrete
	// search, engine layers — as JSONL events (see internal/obs and the
	// -trace-out CLI flag). Span IDs are deterministic at any Parallelism.
	//
	// When both Tracer and TraceSpan are nil, the entry points consult the
	// context: a span installed with obs.WithSpan (or a tracer installed
	// with obs.WithTracer) scopes the run's spans to the caller — this is
	// how the HTTP server attaches every engine/datalog/absint span to the
	// request that caused it without widening any signature. Explicit
	// Options win over the context.
	Tracer *obs.Tracer
	// TraceSpan, when non-nil, nests the entry point's root span under an
	// existing parent (e.g. a CLI-level span) instead of starting a new
	// trace root on Tracer.
	TraceSpan *obs.Span
	// Metrics, when non-nil, receives live counters, gauges and histograms
	// of the run (exposed in Prometheus/expvar form via -metrics-addr).
	// When nil, a registry installed with obs.WithMetrics on the context is
	// used instead.
	Metrics *obs.Registry
	// Cache, when non-nil, enables the content-addressed verdict cache for
	// Verify: the system is sliced (Slice), canonicalized modulo renaming
	// of threads/registers/variables and dis order, and the verdict is
	// looked up under the SHA-256 of the canonical form plus the
	// verdict-affecting options. On a miss the canonical system is
	// verified (so witnesses and classes are in canonical names and
	// hits/misses render identically) and complete, error-free results are
	// stored. Concurrent misses of one key share a single computation.
	// Hits return Result.CacheHit = true with zero Stats and a nil Graph.
	Cache *Cache
	// memoKey carries the canonical system hash into the backends so
	// sub-problem results (dis-run skeleton enumerations) can be memoized
	// across option variants of the same family. Set only by verifyCached.
	memoKey string
}

// numericOptions lists the range-limited numeric knobs exactly once, so the
// lenient library-level clamp (normalized) and the strict caller-facing
// check (Validate) can never disagree about which fields are limited or what
// their zero value means.
var numericOptions = []struct {
	field string
	zero  string // meaning of the zero value, for error messages
	get   func(*Options) *int
}{
	{"MaxMacroStates", "unlimited", func(o *Options) *int { return &o.MaxMacroStates }},
	{"MaxStates", "unlimited", func(o *Options) *int { return &o.MaxStates }},
	{"MaxSkeletons", "unlimited", func(o *Options) *int { return &o.MaxSkeletons }},
	{"Parallelism", "GOMAXPROCS", func(o *Options) *int { return &o.Parallelism }},
	{"UnrollDis", "no unrolling", func(o *Options) *int { return &o.UnrollDis }},
}

// OptionError reports one out-of-range Options field from Validate. Field is
// the Go field name (which doubles as the wire-API knob name modulo casing),
// so callers building HTTP 400 responses or CLI diagnostics can point at the
// exact offending knob.
type OptionError struct {
	// Field is the Options field name, e.g. "MaxStates".
	Field string
	// Value is the rejected value.
	Value int
	// Reason states the violated constraint, e.g. "must be ≥ 0 (0 = unlimited)".
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("paramra: Options.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// Validate reports every out-of-range numeric option as a *OptionError
// (multiple violations are combined with errors.Join, so errors.As finds the
// first and errors.Is matching works per-field). The library entry points do
// not require a Validate call — they clamp silently, see normalized — but
// strict frontends (the HTTP server, the CLIs) use it to reject bad knobs
// with a field-level message instead of silently reinterpreting them.
func (o Options) Validate() error {
	var errs []error
	for _, f := range numericOptions {
		if v := *f.get(&o); v < 0 {
			errs = append(errs, &OptionError{
				Field:  f.field,
				Value:  v,
				Reason: fmt.Sprintf("must be ≥ 0 (0 = %s)", f.zero),
			})
		}
	}
	return errors.Join(errs...)
}

// normalized clamps out-of-range numeric options to their documented
// defaults: every negative cap or worker count behaves exactly like 0
// (unlimited / GOMAXPROCS / no unrolling). Every entry point applies it
// first, so all backends interpret the same Options identically. Frontends
// that must not clamp call Validate instead.
func (o Options) normalized() Options {
	for _, f := range numericOptions {
		if p := f.get(&o); *p < 0 {
			*p = 0
		}
	}
	return o
}

// beginSpan opens an entry point's root span: a child of TraceSpan when
// set, else a new root on Tracer, else a child/root of whatever the context
// carries (obs.WithSpan / obs.WithTracer). Nothing anywhere yields a nil
// (no-op) span, so disabled tracing stays a pointer check plus two context
// lookups per entry point — not per span site; nested spans branch on the
// parent pointer alone.
func (o Options) beginSpan(ctx context.Context, name string) *obs.Span {
	if o.TraceSpan != nil {
		return o.TraceSpan.Child(name)
	}
	if o.Tracer != nil {
		return o.Tracer.Start(name, nil)
	}
	if s := obs.SpanFrom(ctx); s != nil {
		return s.Child(name)
	}
	if t := obs.TracerFrom(ctx); t != nil {
		return t.Start(name, nil)
	}
	return nil
}

// metrics resolves the run's registry: explicit Options first, then the
// context (obs.WithMetrics). Both nil yields a nil (no-op) registry.
func (o Options) metrics(ctx context.Context) *obs.Registry {
	if o.Metrics != nil {
		return o.Metrics
	}
	return obs.MetricsFrom(ctx)
}

// Stats reports verifier work. Each backend populates its own field group
// (plus the shared engine group); see the package documentation for the
// exact matrix.
type Stats struct {
	// Fixpoint backend (simplified semantics).
	MacroStates     int
	DisTransitions  int
	EnvConfigs      int
	EnvMsgs         int
	SaturationSteps int

	// Concrete backend (full RA semantics of a fixed instance).
	States      int
	Transitions int

	// Datalog backend (makeP, Theorem 4.1). FixpointRounds and DatalogAtoms
	// sum over the evaluated query instances; under parallelism with an
	// UNSAFE early exit the sums cover the instances evaluated before the
	// first hit.
	Skeletons      int
	DatalogFacts   int
	DatalogRules   int
	FixpointRounds int
	DatalogAtoms   int

	// Shared parallel-engine counters.
	DedupHits    int64
	PeakFrontier int64
	Wall         time.Duration
	Workers      int
}

// fromEngine maps engine-level counters into the shared group.
func (s *Stats) fromEngine(es engine.Stats) {
	s.DedupHits = es.DedupHits
	s.PeakFrontier = es.PeakFrontier
	s.Wall = es.Wall
	s.Workers = es.Workers
}

// fixpointProgress adapts a Stats progress callback for the fixpoint
// backend's engine.
func fixpointProgress(p func(Stats)) func(engine.Stats) {
	if p == nil {
		return nil
	}
	return func(es engine.Stats) {
		var s Stats
		s.MacroStates = int(es.States)
		s.fromEngine(es)
		p(s)
	}
}

// concreteProgress adapts a Stats progress callback for the concrete
// backend's engine.
func concreteProgress(p func(Stats)) func(engine.Stats) {
	if p == nil {
		return nil
	}
	return func(es engine.Stats) {
		var s Stats
		s.States = int(es.States)
		s.Transitions = int(es.Transitions)
		s.fromEngine(es)
		p(s)
	}
}

// Result is the verification outcome.
type Result struct {
	// Unsafe is true when some instance reaches `assert false` (or
	// generates the goal message).
	Unsafe bool
	// Complete is false when a search limit was hit before a verdict.
	Complete bool
	// Class is the system's classification.
	Class SystemClass
	// Underapprox is true when dis loops were unrolled, so a SAFE verdict
	// only covers the unrolled behaviours.
	Underapprox bool
	// Stats reports verifier work (all backends; see Stats).
	Stats Stats
	// EnvThreadBound is the §4.3 cost bound on the number of env threads
	// sufficient to reproduce the violation (-1 when not applicable).
	EnvThreadBound int64
	// Graph is the dependency graph of the violation (fixpoint backend,
	// unsafe verdicts only).
	Graph *DependencyGraph
	// Witness lists the messages read by the violating thread, in order
	// (fixpoint backend, unsafe verdicts only), or the confirming
	// interleaving's events when the prepass decided.
	Witness []string
	// DecidedBy names the component that produced the verdict: "prepass",
	// "fixpoint", or "datalog".
	DecidedBy string
	// PrepassReason is the prepass's one-line justification when
	// Options.Prepass was set (populated on inconclusive outcomes too, so
	// callers can see why the fast path did not fire).
	PrepassReason string
	// CacheHit is true when the verdict was served from Options.Cache
	// (including a result shared with a concurrent identical request)
	// rather than computed by this call. Cached results carry zero Stats
	// and no Graph.
	CacheHit bool
}

// Verify decides parameterized safety for the system. The context carries
// the primary resource limit: on cancellation or deadline the partial
// Result (Complete = false) is returned together with the context error.
func Verify(ctx context.Context, sys *System, opts Options) (Result, error) {
	opts = opts.normalized()
	res, err := verifyCached(ctx, sys, opts)
	// The terminal Progress emission is exactly the returned Stats, for
	// every backend and on every path (including errors).
	if opts.Progress != nil {
		opts.Progress(res.Stats)
	}
	return res, err
}

func verify(ctx context.Context, sys *System, opts Options) (Result, error) {
	span := opts.beginSpan(ctx, "verify")
	defer span.End()

	res := Result{EnvThreadBound: -1}
	if opts.Prepass {
		// The prepass runs on the original system, before any unrolling, so
		// a SAFE proof covers the true semantics rather than the bounded
		// under-approximation.
		pspan := span.Child("prepass")
		out, err := prepass(ctx, sys, opts, pspan)
		pspan.End()
		if err != nil {
			res.Class = lang.Classify(sys)
			return res, err
		}
		var done bool
		if res, done = applyPrepass(res, out); done {
			res.Class = lang.Classify(sys)
			if span != nil {
				span.SetAttr("decided_by", "prepass")
				span.SetAttr("unsafe", res.Unsafe)
				span.SetAttr("complete", res.Complete)
			}
			return res, nil
		}
	}
	work := sys
	if opts.UnrollDis > 0 {
		cls := lang.Classify(sys)
		needs := false
		for _, d := range cls.Dis {
			if !d.Acyclic {
				needs = true
			}
		}
		if needs {
			us := span.Child("unroll")
			work = lang.UnrollSystem(sys, opts.UnrollDis)
			if us != nil {
				us.SetAttr("k", opts.UnrollDis)
				us.End()
			}
			res.Underapprox = true
		}
	}
	res.Class = lang.Classify(work)
	if span != nil {
		span.SetAttr("class", res.Class.String())
		if opts.Datalog {
			span.SetAttr("backend", "datalog")
		} else {
			span.SetAttr("backend", "fixpoint")
		}
	}
	seal := func(r Result) Result {
		if span != nil {
			span.SetAttr("unsafe", r.Unsafe)
			span.SetAttr("complete", r.Complete)
		}
		return r
	}

	if opts.Datalog {
		res.DecidedBy = "datalog"
		r, err := verifyDatalog(ctx, work, opts, res, span)
		return seal(r), err
	}
	res.DecidedBy = "fixpoint"

	var goal *simplified.Goal
	if opts.Goal != nil {
		v, ok := work.VarByName(opts.Goal.Var)
		if !ok {
			return res, fmt.Errorf("paramra: unknown goal variable %q", opts.Goal.Var)
		}
		goal = &simplified.Goal{Var: v, Val: lang.Val(opts.Goal.Val)}
	}
	ver, err := simplified.New(work, simplified.Options{
		MaxMacroStates: opts.MaxMacroStates,
		Goal:           goal,
		Workers:        opts.Parallelism,
		Progress:       fixpointProgress(opts.Progress),
		Trace:          span,
		Metrics:        opts.metrics(ctx),
	})
	if err != nil {
		return res, err
	}
	out := ver.VerifyContext(ctx)
	res.Unsafe = out.Unsafe
	res.Complete = out.Complete
	res.Stats = Stats{
		MacroStates:     out.Stats.MacroStates,
		DisTransitions:  out.Stats.DisTransitions,
		EnvConfigs:      out.Stats.EnvConfigs,
		EnvMsgs:         out.Stats.EnvMsgs,
		SaturationSteps: out.Stats.SaturationSteps,
	}
	res.Stats.fromEngine(out.Engine)
	if out.Err != nil {
		return seal(res), out.Err
	}
	if out.Unsafe && out.Violation != nil {
		res.Witness = out.Violation.Log.Keys()
		if g, err := depgraph.FromViolation(work, out.Violation); err == nil {
			res.Graph = g
			res.EnvThreadBound = g.CostGoal()
		}
	}
	return seal(res), nil
}

// verifyDatalog runs the makeP → Datalog backend: one query instance per
// dis-run skeleton, evaluated ∃-style (first derivable goal wins). The
// instances are independent, so they are evaluated by Parallelism workers;
// the verdict is deterministic regardless. Stats.Wall and Stats.Workers are
// populated on every path, including encoding errors and cancellation.
func verifyDatalog(ctx context.Context, sys *System, opts Options, res Result, span *obs.Span) (Result, error) {
	if opts.Goal != nil {
		return res, errors.New("paramra: the Datalog backend supports assert-reachability only")
	}
	maxSk := opts.MaxSkeletons
	if maxSk == 0 {
		maxSk = 100_000
	}
	start := time.Now()
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	seal := func(r Result) Result {
		r.Stats.Wall = time.Since(start)
		r.Stats.Workers = workers
		return r
	}
	dspan := span.Child("datalog")
	defer dspan.End()

	hintsOn := opts.Prepass || opts.DatalogHints
	// The ground query instances depend only on the (canonical) system,
	// the skeleton cap, the unroll depth, and whether hints are on — so
	// within a cache-enabled pipeline they are memoized across option
	// variants of the same program family. The memoized slice is shared
	// read-only: QueryCtx never mutates a Problem.
	var memoKey string
	if opts.Cache != nil && opts.memoKey != "" {
		memoKey = fmt.Sprintf("skel|%s|%d|%d|%t", opts.memoKey, opts.UnrollDis, maxSk, hintsOn)
	}
	var (
		ps       []*encode.Problem
		complete bool
		memoHit  bool
	)
	enc := dspan.Child("skeleton-enumeration")
	if memoKey != "" {
		if m, ok := opts.Cache.MemoGet(memoKey); ok {
			sm := m.(skeletonMemo)
			ps, complete, memoHit = sm.ps, sm.complete, true
		}
	}
	if !memoHit {
		// With the prepass on, the abstract value sets double as grounding
		// hints: registers are enumerated only over the values they can
		// hold at each env PC, shrinking the instances without changing
		// derivability. The facts must describe the exact system being
		// encoded (post-slice, post-unroll), so they are recomputed here
		// rather than reused from the verdict prepass on the original
		// system.
		var hints encode.Hints
		if hintsOn {
			if ef := absint.Analyze(sys).EnvFacts(); ef != nil {
				hints = ef
			}
		}
		var err error
		ps, complete, err = encode.AllCtxHints(ctx, sys, maxSk, hints)
		if err != nil {
			if enc != nil {
				enc.End()
			}
			return seal(res), err
		}
		if memoKey != "" {
			opts.Cache.MemoPut(memoKey, skeletonMemo{ps: ps, complete: complete})
		}
	}
	if enc != nil {
		enc.SetAttr("skeletons", len(ps))
		enc.SetAttr("complete", complete)
		enc.SetAttr("memo", memoHit)
		enc.End()
	}
	res.Stats.Skeletons = len(ps)
	for _, p := range ps {
		for _, r := range p.Prog.Rules {
			if r.IsFact() {
				res.Stats.DatalogFacts++
			} else {
				res.Stats.DatalogRules++
			}
		}
	}

	if workers > len(ps) && len(ps) > 0 {
		workers = len(ps)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var hInst, hRound *obs.Histogram
	var cInst, cRounds, cAtoms *obs.Counter
	if m := opts.metrics(ctx); m != nil {
		hInst = m.Histogram("paramra_datalog_instance_ns",
			"wall time per Datalog query instance (ns)")
		hRound = m.Histogram("paramra_datalog_round_ns",
			"wall time per semi-naive delta round (ns)")
		cInst = m.Counter("paramra_datalog_instances_total",
			"Datalog query instances evaluated")
		cRounds = m.Counter("paramra_datalog_rounds_total",
			"semi-naive fixpoint rounds across instances")
		cAtoms = m.Counter("paramra_datalog_atoms_total",
			"ground atoms derived across instances")
	}
	var roundHook datalog.RoundHook
	if hRound != nil {
		roundHook = func(d time.Duration) { hRound.Observe(int64(d)) }
	}

	// Live counters for the progress ticker; folded into res.Stats after
	// the workers join.
	var rounds, atoms, instances atomic.Int64
	snapshot := func() Stats {
		s := res.Stats
		s.FixpointRounds = int(rounds.Load())
		s.DatalogAtoms = int(atoms.Load())
		s.Wall = time.Since(start)
		s.Workers = workers
		return s
	}
	var stopProg chan struct{}
	if opts.Progress != nil {
		stopProg = make(chan struct{})
		go func() {
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-tick.C:
					opts.Progress(snapshot())
				}
			}
		}()
	}

	eval := dspan.Child("datalog-eval")
	var (
		next      atomic.Int64
		unsafeHit atomic.Bool
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) || cctx.Err() != nil {
					return
				}
				var t0 time.Time
				if hInst != nil {
					t0 = time.Now()
				}
				// Context-aware query: cancellation (deadline or another
				// worker's unsafe hit) aborts a long evaluation mid-round
				// instead of letting it run to fixpoint. A true answer from
				// an aborted run is still a valid derivation.
				hit, st, _ := datalog.QueryCtx(cctx, ps[i].Prog, ps[i].Goal, roundHook)
				if hInst != nil {
					hInst.Observe(int64(time.Since(t0)))
				}
				rounds.Add(int64(st.Rounds))
				atoms.Add(int64(st.Atoms))
				instances.Add(1)
				cInst.Inc()
				cRounds.Add(int64(st.Rounds))
				cAtoms.Add(int64(st.Atoms))
				if hit {
					unsafeHit.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if stopProg != nil {
		close(stopProg)
	}
	res.Stats.FixpointRounds = int(rounds.Load())
	res.Stats.DatalogAtoms = int(atoms.Load())
	res.Unsafe = unsafeHit.Load()
	res.Complete = res.Unsafe || complete
	if eval != nil {
		eval.SetAttr("instances_evaluated", instances.Load())
		eval.SetAttr("rounds", res.Stats.FixpointRounds)
		eval.SetAttr("atoms", res.Stats.DatalogAtoms)
		eval.SetAttr("workers", workers)
		eval.SetAttr("unsafe", res.Unsafe)
		eval.End()
	}
	if err := ctx.Err(); err != nil && !res.Unsafe {
		res.Complete = false
		return seal(res), err
	}
	return seal(res), nil
}

// ConfirmError reports a failed ConfirmViolation search. It is returned
// (wrapped in the error interface) when no concrete instance within the
// tried env-thread bound could be confirmed; given Theorem 3.4 this
// indicates the caps were too small, not a false alarm.
type ConfirmError struct {
	// BoundTried is the largest env-thread count searched (the §4.3 bound
	// capped at the caller's maxN).
	BoundTried int64
	// StateCapHit is true when at least one instance search was truncated
	// by Options.MaxStates, so raising the state cap may confirm.
	StateCapHit bool
	// Err is the underlying context error when the search was cancelled.
	Err error
}

func (e *ConfirmError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("paramra: confirmation interrupted within %d env threads: %v", e.BoundTried, e.Err)
	}
	if e.StateCapHit {
		return fmt.Sprintf("paramra: no confirmation within %d env threads (state cap hit; raise maxStates)", e.BoundTried)
	}
	return fmt.Sprintf("paramra: no confirmation within %d env threads (raise maxN)", e.BoundTried)
}

func (e *ConfirmError) Unwrap() error { return e.Err }

// ConfirmViolation independently validates an UNSAFE verdict: it searches
// for a concrete instance (under the full RA semantics of Figure 2) that
// exhibits the violation, trying env thread counts up to the §4.3 cost
// bound capped at maxN. It returns the confirming thread count and the
// interleaving witness; on failure the error is a *ConfirmError carrying
// the tried bound and whether the state cap truncated a search.
func ConfirmViolation(ctx context.Context, sys *System, res Result, maxN int, opts Options) (int, string, error) {
	opts = opts.normalized()
	if !res.Unsafe {
		return 0, "", errors.New("paramra: result is not a violation")
	}
	hi := int64(maxN)
	if res.EnvThreadBound >= 0 && res.EnvThreadBound < hi {
		hi = res.EnvThreadBound
	}
	if sys.Env == nil {
		hi = 0
	}
	span := opts.beginSpan(ctx, "confirm-violation")
	defer span.End()
	if span != nil {
		span.SetAttr("env_thread_bound", hi)
	}
	limitHit := false
	for n := 0; n <= int(hi); n++ {
		inst, err := ra.NewInstance(sys, n)
		if err != nil {
			return 0, "", err
		}
		out := inst.ExploreContext(ctx, ra.Limits{
			MaxStates: opts.MaxStates,
			Workers:   opts.Parallelism,
			Progress:  concreteProgress(opts.Progress),
			Trace:     span,
			Metrics:   opts.metrics(ctx),
		})
		if out.Unsafe {
			if span != nil {
				span.SetAttr("confirmed_env_threads", n)
			}
			return n, ra.FormatWitness(out.Witness), nil
		}
		if out.Err != nil {
			return 0, "", &ConfirmError{BoundTried: hi, StateCapHit: limitHit, Err: out.Err}
		}
		if !out.Complete {
			limitHit = true
		}
	}
	return 0, "", &ConfirmError{BoundTried: hi, StateCapHit: limitHit}
}

// DeadlockResult classifies the sink states of a fixed instance.
type DeadlockResult struct {
	// Deadlocks counts reachable states with no enabled transition where
	// some thread has not finished (e.g. stuck in an assume).
	Deadlocks int
	// Terminal counts states where every thread finished its program.
	Terminal int
	// Complete is true when the state space was exhausted.
	Complete bool
	// Example renders one deadlocked state; StuckThreads names its
	// unfinished threads.
	Example      string
	StuckThreads []string
}

// FindDeadlocks explores the fixed instance with nEnv env threads under the
// concrete RA semantics and classifies its sink states. Counts (and the
// reported example, canonicalized to the smallest state key) are identical
// for every Options.Parallelism.
func FindDeadlocks(ctx context.Context, sys *System, nEnv int, opts Options) (DeadlockResult, error) {
	opts = opts.normalized()
	inst, err := ra.NewInstance(sys, nEnv)
	if err != nil {
		return DeadlockResult{}, err
	}
	span := opts.beginSpan(ctx, "find-deadlocks")
	defer span.End()
	rep := inst.FindDeadlocksContext(ctx, ra.Limits{
		MaxStates: opts.MaxStates,
		Workers:   opts.Parallelism,
		Progress:  concreteProgress(opts.Progress),
		Trace:     span,
		Metrics:   opts.metrics(ctx),
	})
	if err := ctx.Err(); err != nil {
		return DeadlockResult{}, err
	}
	return DeadlockResult{
		Deadlocks: rep.Deadlocks, Terminal: rep.Terminal, Complete: rep.Complete,
		Example: rep.Example, StuckThreads: rep.StuckThreads,
	}, nil
}

// Inventory computes the full Message Generation relation of §4.1: for
// every shared variable, the set of values some generatable message
// carries. Keys are variable names; asserts are inert during the analysis.
func Inventory(ctx context.Context, sys *System, opts Options) (map[string][]int, error) {
	opts = opts.normalized()
	span := opts.beginSpan(ctx, "inventory")
	defer span.End()
	v, err := simplified.New(sys, simplified.Options{
		MaxMacroStates: opts.MaxMacroStates,
		Workers:        opts.Parallelism,
		Progress:       fixpointProgress(opts.Progress),
		Trace:          span,
		Metrics:        opts.metrics(ctx),
	})
	if err != nil {
		return nil, err
	}
	inv, _, complete := v.InventoryContext(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !complete {
		return nil, errors.New("paramra: inventory search hit the state cap")
	}
	out := make(map[string][]int, len(sys.Vars))
	for vi, name := range sys.Vars {
		var vals []int
		for d := 0; d < sys.Dom; d++ {
			if inv[lang.VarID(vi)][lang.Val(d)] {
				vals = append(vals, d)
			}
		}
		out[name] = vals
	}
	return out, nil
}

// InstanceResult is the outcome of exploring one fixed instance under the
// concrete RA semantics.
type InstanceResult struct {
	Unsafe   bool
	Complete bool
	States   int
	// Stats carries the concrete and engine counter groups.
	Stats Stats
	// Witness is a violating interleaving rendered one event per line.
	Witness string
}

// VerifyInstance explores the concrete RA state space of the instance with
// nEnv environment threads, bounded by Options.MaxStates and the context.
// As with Verify, the last Progress emission is exactly the returned Stats.
func VerifyInstance(ctx context.Context, sys *System, nEnv int, opts Options) (InstanceResult, error) {
	opts = opts.normalized()
	res, err := verifyInstance(ctx, sys, nEnv, opts)
	if opts.Progress != nil {
		opts.Progress(res.Stats)
	}
	return res, err
}

func verifyInstance(ctx context.Context, sys *System, nEnv int, opts Options) (InstanceResult, error) {
	inst, err := ra.NewInstance(sys, nEnv)
	if err != nil {
		return InstanceResult{}, err
	}
	span := opts.beginSpan(ctx, "verify-instance")
	defer span.End()
	if span != nil {
		span.SetAttr("env_threads", nEnv)
	}
	out := inst.ExploreContext(ctx, ra.Limits{
		MaxStates: opts.MaxStates,
		Workers:   opts.Parallelism,
		Progress:  concreteProgress(opts.Progress),
		Trace:     span,
		Metrics:   opts.metrics(ctx),
	})
	res := InstanceResult{
		Unsafe:   out.Unsafe,
		Complete: out.Complete,
		States:   out.States,
		Witness:  ra.FormatWitness(out.Witness),
	}
	res.Stats.States = out.States
	res.Stats.Transitions = out.Transitions
	res.Stats.fromEngine(out.Engine)
	if span != nil {
		span.SetAttr("unsafe", res.Unsafe)
		span.SetAttr("complete", res.Complete)
	}
	if out.Err != nil {
		return res, out.Err
	}
	return res, nil
}
