package paramra

import (
	"errors"
	"fmt"
	"os"

	"paramra/internal/analysis"
	"paramra/internal/depgraph"
	"paramra/internal/encode"
	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/simplified"
)

// Core types re-exported from the language package.
type (
	// System is a parameterized system: shared variables, a data domain,
	// an env program and dis programs.
	System = lang.System
	// Program is a single thread's code.
	Program = lang.Program
	// SystemClass is the paper-notation classification of a system.
	SystemClass = lang.SystemClass
	// Stats reports verifier work.
	Stats = simplified.Stats
	// DependencyGraph is the Definition 1 dependency graph of a violation.
	DependencyGraph = depgraph.Graph
)

// Errors surfaced by Verify.
var (
	// ErrEnvCAS marks systems whose env threads use CAS (undecidable class,
	// Theorem 1.1).
	ErrEnvCAS = simplified.ErrEnvCAS
	// ErrDisCyclic marks systems with looping dis threads; set
	// Options.UnrollDis for a bounded under-approximation.
	ErrDisCyclic = simplified.ErrDisCyclic
)

// Parse reads a system in concrete syntax.
func Parse(src string) (*System, error) { return lang.ParseSystem(src) }

// ParseFile reads a system from a file. Syntax errors are prefixed with the
// file name, in the usual "file:line:col: message" shape.
func ParseFile(path string) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := Parse(string(data))
	if err != nil {
		var syn *lang.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("%s:%w", path, err)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sys, nil
}

// Format renders a system back into concrete syntax.
func Format(sys *System) string { return lang.Print(sys) }

// Classify computes the system class signature, e.g.
// "env(nocas) || dis_1(acyc)".
func Classify(sys *System) SystemClass { return lang.Classify(sys) }

// Unroll returns a copy of the system with every dis-thread loop unrolled k
// times (a bounded-model-checking under-approximation; env loops are
// handled exactly by the verifier and left untouched).
func Unroll(sys *System, k int) *System { return lang.UnrollSystem(sys, k) }

// Diagnostic is one static-analysis finding (see cmd/ravet).
type Diagnostic = analysis.Diagnostic

// SliceStats reports the size reduction achieved by Slice.
type SliceStats = analysis.SliceStats

// Analyze runs the static lint rules over the system and returns the
// findings sorted by source position. Callers that know the source file
// should set Diagnostic.File before printing.
func Analyze(sys *System) []Diagnostic { return analysis.AnalyzeSystem(sys) }

// Slice returns a smaller system with the same parameterized safety verdict:
// it drops assignments to dead registers, statements at unreachable PCs,
// stores to write-only shared variables, and unused registers and variables.
// Variables named in keepVars survive even when removable (pass the goal
// variable of a Message Generation query). The input is not mutated.
func Slice(sys *System, keepVars ...string) (*System, SliceStats) {
	return analysis.Slice(sys, analysis.SliceOptions{KeepVars: keepVars})
}

// Goal switches verification to the Message Generation problem (§4.1): can
// a message with the given variable and value be generated?
type Goal struct {
	Var string
	Val int
}

// Options configures Verify.
type Options struct {
	// MaxMacroStates caps the search (0 = unlimited).
	MaxMacroStates int
	// Goal, when non-nil, asks Message Generation instead of assert
	// reachability.
	Goal *Goal
	// UnrollDis, when positive, unrolls looping dis threads this many times
	// before verification (making the result an under-approximation for
	// such systems).
	UnrollDis int
	// Datalog selects the makeP → Datalog backend (Theorem 4.1) instead of
	// the integrated fixpoint engine. Slower; exposed for cross-checking
	// and experiments.
	Datalog bool
	// MaxSkeletons caps dis-run enumeration for the Datalog backend.
	MaxSkeletons int
}

// Result is the verification outcome.
type Result struct {
	// Unsafe is true when some instance reaches `assert false` (or
	// generates the goal message).
	Unsafe bool
	// Complete is false when a search limit was hit before a verdict.
	Complete bool
	// Class is the system's classification.
	Class SystemClass
	// Underapprox is true when dis loops were unrolled, so a SAFE verdict
	// only covers the unrolled behaviours.
	Underapprox bool
	// Stats reports verifier work (fixpoint backend only).
	Stats Stats
	// EnvThreadBound is the §4.3 cost bound on the number of env threads
	// sufficient to reproduce the violation (-1 when not applicable).
	EnvThreadBound int64
	// Graph is the dependency graph of the violation (fixpoint backend,
	// unsafe verdicts only).
	Graph *DependencyGraph
	// Witness lists the messages read by the violating thread, in order
	// (fixpoint backend, unsafe verdicts only).
	Witness []string
}

// Verify decides parameterized safety for the system.
func Verify(sys *System, opts Options) (Result, error) {
	res := Result{EnvThreadBound: -1}
	work := sys
	if opts.UnrollDis > 0 {
		cls := lang.Classify(sys)
		needs := false
		for _, d := range cls.Dis {
			if !d.Acyclic {
				needs = true
			}
		}
		if needs {
			work = lang.UnrollSystem(sys, opts.UnrollDis)
			res.Underapprox = true
		}
	}
	res.Class = lang.Classify(work)

	if opts.Datalog {
		return verifyDatalog(work, opts, res)
	}

	var goal *simplified.Goal
	if opts.Goal != nil {
		v, ok := work.VarByName(opts.Goal.Var)
		if !ok {
			return res, fmt.Errorf("paramra: unknown goal variable %q", opts.Goal.Var)
		}
		goal = &simplified.Goal{Var: v, Val: lang.Val(opts.Goal.Val)}
	}
	ver, err := simplified.New(work, simplified.Options{
		MaxMacroStates: opts.MaxMacroStates,
		Goal:           goal,
	})
	if err != nil {
		return res, err
	}
	out := ver.Verify()
	res.Unsafe = out.Unsafe
	res.Complete = out.Complete
	res.Stats = out.Stats
	if out.Unsafe && out.Violation != nil {
		res.Witness = out.Violation.Log.Keys()
		if g, err := depgraph.FromViolation(work, out.Violation); err == nil {
			res.Graph = g
			res.EnvThreadBound = g.CostGoal()
		}
	}
	return res, nil
}

func verifyDatalog(sys *System, opts Options, res Result) (Result, error) {
	if opts.Goal != nil {
		return res, errors.New("paramra: the Datalog backend supports assert-reachability only")
	}
	maxSk := opts.MaxSkeletons
	if maxSk == 0 {
		maxSk = 100_000
	}
	ps, complete, err := encode.All(sys, maxSk)
	if err != nil {
		return res, err
	}
	res.Unsafe = encode.Unsafe(ps)
	res.Complete = res.Unsafe || complete
	return res, nil
}

// ConfirmViolation independently validates an UNSAFE verdict: it searches
// for a concrete instance (under the full RA semantics of Figure 2) that
// exhibits the violation, trying env thread counts up to the §4.3 cost
// bound capped at maxN. It returns the confirming thread count and the
// interleaving witness, or an error when no instance within the cap could
// be fully explored and confirmed (which, given Theorem 3.4, indicates the
// bound cap or the state cap was too small — not a false alarm).
func ConfirmViolation(sys *System, res Result, maxN, maxStates int) (int, string, error) {
	if !res.Unsafe {
		return 0, "", errors.New("paramra: result is not a violation")
	}
	hi := int64(maxN)
	if res.EnvThreadBound >= 0 && res.EnvThreadBound < hi {
		hi = res.EnvThreadBound
	}
	if sys.Env == nil {
		hi = 0
	}
	limitHit := false
	for n := 0; n <= int(hi); n++ {
		inst, err := ra.NewInstance(sys, n)
		if err != nil {
			return 0, "", err
		}
		out := inst.Explore(ra.Limits{MaxStates: maxStates})
		if out.Unsafe {
			return n, ra.FormatWitness(out.Witness), nil
		}
		if !out.Complete {
			limitHit = true
		}
	}
	if limitHit {
		return 0, "", fmt.Errorf("paramra: no confirmation within %d env threads (state cap hit; raise maxStates)", hi)
	}
	return 0, "", fmt.Errorf("paramra: no confirmation within %d env threads (raise maxN)", hi)
}

// DeadlockResult classifies the sink states of a fixed instance.
type DeadlockResult struct {
	// Deadlocks counts reachable states with no enabled transition where
	// some thread has not finished (e.g. stuck in an assume).
	Deadlocks int
	// Terminal counts states where every thread finished its program.
	Terminal int
	// Complete is true when the state space was exhausted.
	Complete bool
	// Example renders one deadlocked state; StuckThreads names its
	// unfinished threads.
	Example      string
	StuckThreads []string
}

// FindDeadlocks explores the fixed instance with nEnv env threads under the
// concrete RA semantics and classifies its sink states.
func FindDeadlocks(sys *System, nEnv, maxStates int) (DeadlockResult, error) {
	inst, err := ra.NewInstance(sys, nEnv)
	if err != nil {
		return DeadlockResult{}, err
	}
	rep := inst.FindDeadlocks(ra.Limits{MaxStates: maxStates})
	return DeadlockResult{
		Deadlocks: rep.Deadlocks, Terminal: rep.Terminal, Complete: rep.Complete,
		Example: rep.Example, StuckThreads: rep.StuckThreads,
	}, nil
}

// Inventory computes the full Message Generation relation of §4.1: for
// every shared variable, the set of values some generatable message
// carries. Keys are variable names; asserts are inert during the analysis.
func Inventory(sys *System, opts Options) (map[string][]int, error) {
	v, err := simplified.New(sys, simplified.Options{MaxMacroStates: opts.MaxMacroStates})
	if err != nil {
		return nil, err
	}
	inv, _, complete := v.Inventory()
	if !complete {
		return nil, errors.New("paramra: inventory search hit the state cap")
	}
	out := make(map[string][]int, len(sys.Vars))
	for vi, name := range sys.Vars {
		var vals []int
		for d := 0; d < sys.Dom; d++ {
			if inv[lang.VarID(vi)][lang.Val(d)] {
				vals = append(vals, d)
			}
		}
		out[name] = vals
	}
	return out, nil
}

// InstanceResult is the outcome of exploring one fixed instance under the
// concrete RA semantics.
type InstanceResult struct {
	Unsafe   bool
	Complete bool
	States   int
	// Witness is a violating interleaving rendered one event per line.
	Witness string
}

// VerifyInstance explores the concrete RA state space of the instance with
// nEnv environment threads (maxStates 0 = unlimited — beware, loops make
// the space infinite in general).
func VerifyInstance(sys *System, nEnv, maxStates int) (InstanceResult, error) {
	inst, err := ra.NewInstance(sys, nEnv)
	if err != nil {
		return InstanceResult{}, err
	}
	out := inst.Explore(ra.Limits{MaxStates: maxStates})
	return InstanceResult{
		Unsafe:   out.Unsafe,
		Complete: out.Complete,
		States:   out.States,
		Witness:  ra.FormatWitness(out.Witness),
	}, nil
}
