module paramra

go 1.22
