package paramra

import (
	"context"
	"strings"

	"paramra/internal/absint"
	"paramra/internal/lang"
	"paramra/internal/obs"
)

// Prepass verdict values (Theorem 3.4 lattice positions the static prepass
// can reach on its own).
type PrepassVerdict = absint.Verdict

// Re-exported prepass verdicts.
const (
	// PrepassInconclusive means the static prepass could not decide.
	PrepassInconclusive = absint.Inconclusive
	// PrepassSafe is a sound proof valid for every replica count.
	PrepassSafe = absint.Safe
	// PrepassUnsafe is a concrete, replayed witness.
	PrepassUnsafe = absint.Unsafe
)

// PrepassOutcome is the full answer of the static prepass.
type PrepassOutcome = absint.Outcome

// Prepass runs the RA-aware abstract interpretation and its two fast paths
// on the system without any state-space search: SAFE when no assert (or the
// goal message, with Options.Goal) is abstractly reachable for any replica
// count, UNSAFE when a loop-free constant-folded path to an assert is
// confirmed by a bounded concrete replay under the full RA semantics.
// Inconclusive verdicts carry the reason the fast paths did not fire.
//
// Verify runs this automatically when Options.Prepass is set; the separate
// entry point serves callers that want the abstract analysis itself (e.g.
// value-set reports) or a decision without ever falling back to a search.
func Prepass(ctx context.Context, sys *System, opts Options) (PrepassOutcome, error) {
	opts = opts.normalized()
	span := opts.beginSpan(ctx, "prepass")
	defer span.End()
	return prepass(ctx, sys, opts, span)
}

func prepass(ctx context.Context, sys *System, opts Options, span *obs.Span) (PrepassOutcome, error) {
	var aopts absint.Options
	if opts.Goal != nil {
		v, ok := sys.VarByName(opts.Goal.Var)
		if !ok {
			// Let the main pipeline report the unknown variable; the prepass
			// just declines to decide.
			return PrepassOutcome{Verdict: PrepassInconclusive,
				Reason: "unknown goal variable"}, nil
		}
		aopts.Goal = &absint.Goal{Var: v, Val: lang.Val(opts.Goal.Val)}
	}
	if opts.MaxStates > 0 {
		aopts.MaxReplayStates = opts.MaxStates
	}
	aopts.Workers = opts.Parallelism
	out, err := absint.Prepass(ctx, sys, aopts)
	if span != nil {
		span.SetAttr("verdict", out.Verdict.String())
		span.SetAttr("reason", out.Reason)
		if out.Analysis != nil {
			span.SetAttr("rounds", out.Analysis.Rounds)
		}
		if out.ReplayStates > 0 {
			span.SetAttr("replay_states", out.ReplayStates)
		}
	}
	return out, err
}

// applyPrepass folds a decisive prepass outcome into a Result. The second
// return is false when the outcome is inconclusive (the caller proceeds to
// the full decision procedure).
func applyPrepass(res Result, out PrepassOutcome) (Result, bool) {
	switch out.Verdict {
	case PrepassSafe:
		res.Complete = true
		res.DecidedBy = "prepass"
		res.PrepassReason = out.Reason
		return res, true
	case PrepassUnsafe:
		res.Unsafe = true
		res.Complete = true
		res.DecidedBy = "prepass"
		res.PrepassReason = out.Reason
		res.EnvThreadBound = int64(out.EnvThreads)
		if out.Witness != "" {
			res.Witness = strings.Split(strings.TrimRight(out.Witness, "\n"), "\n")
		}
		return res, true
	default:
		res.PrepassReason = out.Reason
		return res, false
	}
}
