package paramra_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// End-to-end tests of the command-line tools: build each binary once, then
// exercise the documented flag combinations and exit codes.

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "paramra-bin")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		for _, tool := range []string{"raverify", "raexplore", "radatalog", "ratqbf", "rabench", "ravet", "raserved", "soak"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

// runTool executes a built binary and returns combined output + exit code.
func runTool(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out), code
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliProdCons = `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`

const cliSafe = `
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`

func TestCLIRaverify(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	path := writeTemp(t, "pc.ra", cliProdCons)
	out, code := runTool(t, "raverify", path)
	if code != 1 || !strings.Contains(out, "UNSAFE") {
		t.Errorf("unsafe system: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "raverify", "-graph", path)
	if !strings.Contains(out, "dependency graph") {
		t.Errorf("-graph output missing: %s", out)
	}
	safePath := writeTemp(t, "mp.ra", cliSafe)
	out, code = runTool(t, "raverify", safePath)
	if code != 0 || !strings.Contains(out, "SAFE") {
		t.Errorf("safe system: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "raverify", "-datalog", path)
	if code != 1 {
		t.Errorf("datalog backend: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "raverify", "-class", path)
	if code != 0 || !strings.Contains(out, "env(nocas") {
		t.Errorf("-class: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "raverify", "-goal-var", "x", "-goal-val", "2", path)
	if code != 1 {
		t.Errorf("goal mode: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "raverify", "-json", path)
	if code != 1 {
		t.Errorf("-json exit code = %d", code)
	}
	var rep struct {
		Verdict        string `json:"verdict"`
		EnvThreadBound int64  `json:"envThreadBound"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Errorf("-json output not valid JSON: %v\n%s", err, out)
	} else if rep.Verdict != "UNSAFE" || rep.EnvThreadBound != 1 {
		t.Errorf("-json content wrong: %+v", rep)
	}
	_, code = runTool(t, "raverify", filepath.Join(t.TempDir(), "missing.ra"))
	if code != 2 {
		t.Errorf("missing file: code=%d", code)
	}
	_, code = runTool(t, "raverify")
	if code != 2 {
		t.Errorf("no args: code=%d", code)
	}
}

func TestCLIRaexplore(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	path := writeTemp(t, "pc.ra", cliProdCons)
	out, code := runTool(t, "raexplore", "-env", "1", path)
	if code != 1 || !strings.Contains(out, "witness") {
		t.Errorf("explore: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "raexplore", "-env", "0", path)
	if code != 0 {
		t.Errorf("0-env explore: code=%d out=%s", code, out)
	}
	out, _ = runTool(t, "raexplore", "-sweep", "2", path)
	if !strings.Contains(out, "env=0") || !strings.Contains(out, "env=2") {
		t.Errorf("sweep output: %s", out)
	}
}

func TestCLIRadatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	path := writeTemp(t, "pc.ra", cliProdCons)
	out, code := runTool(t, "radatalog", path)
	if code != 1 || !strings.Contains(out, "UNSAFE") {
		t.Errorf("radatalog: code=%d out=%s", code, out)
	}
	dl := writeTemp(t, "tc.dl", "edge(a,b). edge(b,c).\npath(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n?- path(a,c).")
	out, code = runTool(t, "radatalog", dl)
	if code != 0 || !strings.Contains(out, "true") {
		t.Errorf("dl eval: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "radatalog", "-cache", "2", dl)
	if code != 1 || !strings.Contains(out, "false") {
		t.Errorf("cache-bounded dl eval: code=%d out=%s", code, out)
	}
}

func TestCLIRatqbf(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	out, code := runTool(t, "ratqbf", "forall u : (u | ~u)")
	if code != 0 || !strings.Contains(out, "agreement") {
		t.Errorf("ratqbf true formula: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "ratqbf", "-random", "-n", "1", "-seed", "3")
	if code != 0 || !strings.Contains(out, "agreement") {
		t.Errorf("ratqbf random: code=%d out=%s", code, out)
	}
}

func TestCLIRavet(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	defective := writeTemp(t, "defects.ra", `
system s { vars x wonly; domain 3; env t }
thread t { regs a dead; dead = 2; a = load x; store wonly a; store x 1 }
`)
	out, code := runTool(t, "ravet", defective)
	if code != 1 {
		t.Errorf("defective file: code=%d out=%s", code, out)
	}
	for _, rule := range []string{"dead-store", "write-only-var"} {
		if !strings.Contains(out, rule) {
			t.Errorf("missing %q diagnostic in output:\n%s", rule, out)
		}
	}
	if !strings.Contains(out, filepath.Base(defective)+":") && !strings.Contains(out, defective+":") {
		t.Errorf("diagnostics not prefixed with the file name:\n%s", out)
	}
	clean := writeTemp(t, "mp.ra", cliSafe)
	out, code = runTool(t, "ravet", clean)
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Errorf("clean file: code=%d out=%q", code, out)
	}
	out, code = runTool(t, "ravet", "-footprint", clean)
	if code != 0 || !strings.Contains(out, "footprint") {
		t.Errorf("-footprint: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "ravet", "-slice", defective)
	if code != 1 || !strings.Contains(out, "slice") {
		t.Errorf("-slice preview: code=%d out=%s", code, out)
	}
	bad := writeTemp(t, "bad.ra", "system oops {")
	_, code = runTool(t, "ravet", bad)
	if code != 2 {
		t.Errorf("parse error: code=%d", code)
	}
	_, code = runTool(t, "ravet")
	if code != 2 {
		t.Errorf("no args: code=%d", code)
	}
}

// TestCLIRavetJSON locks the machine-readable diagnostic format against a
// golden file (refresh with `go test -run TestCLIRavetJSON -update-golden`).
// The fixture is addressed relatively so the JSON "file" field is stable.
func TestCLIRavetJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	fixture := filepath.Join("testdata", "ravet", "defects.ra")
	out, code := runTool(t, "ravet", "-json", fixture)
	if code != 1 {
		t.Fatalf("defective fixture: code=%d out=%s", code, out)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Rule     string `json:"rule"`
		Severity string `json:"severity"`
		Thread   string `json:"thread"`
		Msg      string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json emitted no diagnostics for the defective fixture")
	}
	sawSeverity := map[string]bool{}
	for _, d := range diags {
		if d.File != fixture || d.Line == 0 || d.Col == 0 || d.Rule == "" || d.Msg == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Severity != "info" && d.Severity != "warning" {
			t.Errorf("unknown severity %q in %+v", d.Severity, d)
		}
		sawSeverity[d.Severity] = true
	}
	if !sawSeverity["info"] || !sawSeverity["warning"] {
		t.Errorf("fixture should produce both severities, got %v", sawSeverity)
	}

	golden := filepath.Join("testdata", "ravet", "defects.json.want")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if out != string(want) {
		t.Errorf("-json output drifted from golden:\ngot:\n%swant:\n%s", out, want)
	}

	// A clean file still yields valid JSON: the empty array.
	clean := writeTemp(t, "mp.ra", cliSafe)
	out, code = runTool(t, "ravet", "-json", clean)
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean file: code=%d out=%q, want []", code, out)
	}
}

func TestCLISliceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	path := writeTemp(t, "pc.ra", cliProdCons)
	out, code := runTool(t, "raverify", "-slice", path)
	if code != 1 || !strings.Contains(out, "UNSAFE") {
		t.Errorf("raverify -slice verdict changed: code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "slice:") {
		t.Errorf("raverify -slice missing slice report:\n%s", out)
	}
	safePath := writeTemp(t, "mp.ra", cliSafe)
	out, code = runTool(t, "raverify", "-slice", safePath)
	if code != 0 || !strings.Contains(out, "SAFE") {
		t.Errorf("raverify -slice on safe system: code=%d out=%s", code, out)
	}
	out, code = runTool(t, "radatalog", "-slice", path)
	if code != 1 || !strings.Contains(out, "UNSAFE") || !strings.Contains(out, "slice:") {
		t.Errorf("radatalog -slice: code=%d out=%s", code, out)
	}
}

func TestCLIRabench(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	out, code := runTool(t, "rabench", "fig5")
	if code != 0 || !strings.Contains(out, "cost(msg#)") {
		t.Errorf("rabench fig5: code=%d out=%s", code, out)
	}
	_, code = runTool(t, "rabench", "nonsense")
	if code != 2 {
		t.Errorf("bad subcommand: code=%d", code)
	}
}
