package paramra

import (
	"context"
	"fmt"

	"paramra/internal/cache"
	"paramra/internal/encode"
)

// Cache is the content-addressed verdict cache plugged into Options.Cache.
// One Cache is safe for (and intended to be) shared by every concurrent
// Verify call in a process; see internal/cache for the canonical-form and
// single-flight semantics.
type Cache = cache.Cache

// CacheOptions configures NewCache.
type CacheOptions = cache.Options

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats = cache.Stats

// NewCache builds a verdict cache for Options.Cache.
func NewCache(o CacheOptions) *Cache { return cache.New(o) }

// skeletonMemo is the memoized result of dis-run skeleton enumeration for
// the Datalog backend (see verifyDatalog). The Problem slice is shared
// read-only across evaluations.
type skeletonMemo struct {
	ps       []*encode.Problem
	complete bool
}

// cacheFingerprint renders every option that can influence a Verify verdict
// into the cache key. Parallelism is deliberately absent (verdicts are
// identical at any worker count, by construction), as are Progress, tracing
// and metrics sinks. goalVar is the goal variable already translated to its
// canonical name (empty when Goal is nil).
func cacheFingerprint(o Options, goalVar string) string {
	g := ""
	if o.Goal != nil {
		g = fmt.Sprintf("%s=%d", goalVar, o.Goal.Val)
	}
	return fmt.Sprintf("fp1|g=%s|u=%d|dl=%t|pp=%t|dh=%t|mm=%d|ms=%d|sk=%d",
		g, o.UnrollDis, o.Datalog, o.Prepass, o.DatalogHints,
		o.MaxMacroStates, o.MaxStates, o.MaxSkeletons)
}

// verifyCached sits between Verify and verify. With no cache configured it
// is a direct passthrough. Otherwise it normalizes the system to its
// canonical form (slice, then canonicalize modulo renaming and dis order),
// and serves the verdict content-addressed: misses verify the canonical
// system — so witnesses, classes, and bounds are expressed in canonical
// names and a later hit is byte-for-byte the verdict a miss would have
// produced — and only complete, error-free results are stored.
func verifyCached(ctx context.Context, sys *System, opts Options) (Result, error) {
	if opts.Cache == nil {
		return verify(ctx, sys, opts)
	}

	// The slicer is the first normalization layer: families that differ
	// only in sliceable dead code share a cache line. It preserves the
	// parameterized verdict by construction (PR 1's differential suite).
	var keep []string
	if opts.Goal != nil {
		keep = []string{opts.Goal.Var}
	}
	sliced, _ := Slice(sys, keep...)
	canon := cache.Canonicalize(sliced)
	canon.Sys.Name = sys.Name

	copts := opts
	copts.memoKey = canon.Hash
	goalVar := ""
	if opts.Goal != nil {
		cv, ok := canon.VarMap[opts.Goal.Var]
		if !ok {
			// Unknown goal variable; let the uncached path report the
			// usual error instead of inventing a cache-layer one.
			return verify(ctx, sys, opts)
		}
		g := *opts.Goal
		g.Var = cv
		copts.Goal = &g
		goalVar = cv
	}
	key := cache.Key(canon.Hash, cacheFingerprint(opts, goalVar))

	// The lookup span covers only the cache decision: on a miss it is
	// closed (outcome=miss) before the underlying verification starts, so
	// trace trees show lookup and verify as siblings, not a lookup that
	// swallowed the whole run.
	lspan := opts.beginSpan(ctx, "cache-lookup")
	if lspan != nil {
		lspan.SetAttr("key", key[:16])
	}
	lookupOpen := true
	endLookup := func(outcome string) {
		if !lookupOpen {
			return
		}
		lookupOpen = false
		if lspan != nil {
			lspan.SetAttr("outcome", outcome)
			lspan.End()
		}
	}

	var (
		full Result
		ferr error
		ran  bool
	)
	v, outcome, err := opts.Cache.Do(ctx, key, func() (cache.Verdict, bool, error) {
		endLookup("miss")
		ran = true
		full, ferr = verify(ctx, canon.Sys, copts)
		storable := ferr == nil && full.Complete
		if storable {
			if ss := opts.beginSpan(ctx, "cache-store"); ss != nil {
				ss.SetAttr("key", key[:16])
				ss.End()
			}
		}
		return toCacheVerdict(full), storable, ferr
	})
	if ran {
		// This caller was the computing leader (or a fallback after a
		// failed leader): return the full result, stats and graph intact.
		return full, ferr
	}
	endLookup(outcome.String())
	if err != nil {
		// Cancelled while waiting on another caller's computation.
		return Result{EnvThreadBound: -1, Class: Classify(canon.Sys)}, err
	}
	return fromCacheVerdict(v), nil
}

func toCacheVerdict(r Result) cache.Verdict {
	return cache.Verdict{
		Unsafe:         r.Unsafe,
		Complete:       r.Complete,
		Class:          r.Class,
		Underapprox:    r.Underapprox,
		EnvThreadBound: r.EnvThreadBound,
		Witness:        append([]string(nil), r.Witness...),
		DecidedBy:      r.DecidedBy,
		PrepassReason:  r.PrepassReason,
	}
}

func fromCacheVerdict(v cache.Verdict) Result {
	return Result{
		Unsafe:         v.Unsafe,
		Complete:       v.Complete,
		Class:          v.Class,
		Underapprox:    v.Underapprox,
		EnvThreadBound: v.EnvThreadBound,
		Witness:        append([]string(nil), v.Witness...),
		DecidedBy:      v.DecidedBy,
		PrepassReason:  v.PrepassReason,
		CacheHit:       true,
	}
}
