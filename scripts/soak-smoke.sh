#!/usr/bin/env sh
# soak-smoke.sh — boot raserved, soak it, SIGTERM it, assert a clean drain.
#
# Usage: scripts/soak-smoke.sh [duration] [concurrency]
#
# Builds both binaries from the working tree (raserved under -race so the
# soak doubles as a race hunt), starts the server on an ephemeral port,
# runs the soak harness with metrics validation, then shuts the server down
# with SIGTERM and requires exit code 0 plus the "drained cleanly" line.
# Exit code 0 means every assertion held. CI's `serve` job runs exactly
# this script.
set -eu

DURATION="${1:-30s}"
CONCURRENCY="${2:-8}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "soak-smoke: building raserved (-race) and soak"
go build -race -o "$WORKDIR/raserved" ./cmd/raserved
go build -o "$WORKDIR/soak" ./cmd/soak

"$WORKDIR/raserved" -addr 127.0.0.1:0 -quiet >"$WORKDIR/raserved.log" 2>&1 &
SERVER_PID=$!

# The first stdout line announces the bound address.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^raserved: listening on //p' "$WORKDIR/raserved.log" | head -1)"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORKDIR/raserved.log"; echo "soak-smoke: server died at startup" >&2; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "soak-smoke: no listening line" >&2; exit 1; }
echo "soak-smoke: server on $ADDR (pid $SERVER_PID)"

SOAK_STATUS=0
"$WORKDIR/soak" -addr "http://$ADDR" -corpus testdata/systems \
  -duration "$DURATION" -concurrency "$CONCURRENCY" -check-metrics || SOAK_STATUS=$?

echo "soak-smoke: sending SIGTERM"
kill -TERM "$SERVER_PID"
DRAIN_STATUS=0
wait "$SERVER_PID" || DRAIN_STATUS=$?

cat "$WORKDIR/raserved.log"
if [ "$SOAK_STATUS" -ne 0 ]; then
  echo "soak-smoke: FAIL (soak exit $SOAK_STATUS)" >&2
  exit 1
fi
if [ "$DRAIN_STATUS" -ne 0 ]; then
  echo "soak-smoke: FAIL (raserved exit $DRAIN_STATUS after SIGTERM)" >&2
  exit 1
fi
if ! grep -q "drained cleanly" "$WORKDIR/raserved.log"; then
  echo "soak-smoke: FAIL (no clean-drain line)" >&2
  exit 1
fi
echo "soak-smoke: PASS"
