#!/usr/bin/env sh
# soak-smoke.sh — boot raserved, soak it, SIGTERM it, assert a clean drain.
#
# Usage: scripts/soak-smoke.sh [duration] [concurrency]
#
# Builds both binaries from the working tree (raserved under -race so the
# soak doubles as a race hunt), starts the server on an ephemeral port with
# a 1ms slow threshold and a trace directory, runs the soak harness with
# metrics + trace-propagation + /debug/slow validation, then shuts the
# server down with SIGTERM and requires exit code 0 plus the "drained
# cleanly" line. Finally the persisted per-request traces are merged with
# `rabench report` into per-phase percentiles, proving the whole tracing
# pipeline end to end. Exit code 0 means every assertion held. CI's `serve`
# job runs exactly this script.
set -eu

DURATION="${1:-30s}"
CONCURRENCY="${2:-8}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "soak-smoke: building raserved (-race), soak, and rabench"
go build -race -o "$WORKDIR/raserved" ./cmd/raserved
go build -o "$WORKDIR/soak" ./cmd/soak
go build -o "$WORKDIR/rabench" ./cmd/rabench

mkdir "$WORKDIR/traces"
# No -quiet: the access log is part of what this smoke asserts (every line
# carries the request's trace ID).
"$WORKDIR/raserved" -addr 127.0.0.1:0 \
  -slow-threshold 1ms -trace-dir "$WORKDIR/traces" \
  >"$WORKDIR/raserved.log" 2>&1 &
SERVER_PID=$!

# The first stdout line announces the bound address.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^raserved: listening on //p' "$WORKDIR/raserved.log" | head -1)"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORKDIR/raserved.log"; echo "soak-smoke: server died at startup" >&2; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "soak-smoke: no listening line" >&2; exit 1; }
echo "soak-smoke: server on $ADDR (pid $SERVER_PID)"

SOAK_STATUS=0
"$WORKDIR/soak" -addr "http://$ADDR" -corpus testdata/systems \
  -duration "$DURATION" -concurrency "$CONCURRENCY" -check-metrics -expect-slow \
  -expect-cache || SOAK_STATUS=$?

echo "soak-smoke: sending SIGTERM"
kill -TERM "$SERVER_PID"
DRAIN_STATUS=0
wait "$SERVER_PID" || DRAIN_STATUS=$?

cat "$WORKDIR/raserved.log"
if [ "$SOAK_STATUS" -ne 0 ]; then
  echo "soak-smoke: FAIL (soak exit $SOAK_STATUS)" >&2
  exit 1
fi
if [ "$DRAIN_STATUS" -ne 0 ]; then
  echo "soak-smoke: FAIL (raserved exit $DRAIN_STATUS after SIGTERM)" >&2
  exit 1
fi
if ! grep -q "drained cleanly" "$WORKDIR/raserved.log"; then
  echo "soak-smoke: FAIL (no clean-drain line)" >&2
  exit 1
fi
# The access log must carry the soak's trace IDs (field 2 of every line).
if ! grep -q "soak-" "$WORKDIR/raserved.log"; then
  echo "soak-smoke: FAIL (no soak trace ID in the access log)" >&2
  exit 1
fi
echo "soak-smoke: merging persisted request traces"
if ! "$WORKDIR/rabench" report "$WORKDIR/traces" >"$WORKDIR/report.json"; then
  echo "soak-smoke: FAIL (rabench report over the trace dir)" >&2
  exit 1
fi
if ! grep -q '"p99Ns"' "$WORKDIR/report.json"; then
  echo "soak-smoke: FAIL (merged report carries no percentiles)" >&2
  exit 1
fi
echo "soak-smoke: PASS"
