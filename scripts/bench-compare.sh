#!/usr/bin/env sh
# bench-compare.sh — the bench regression gate.
#
# Usage: scripts/bench-compare.sh [-selftest] [baseline] [tolerance]
#
# Re-runs the parallel experiment and compares it against the checked-in
# baseline (BENCH_parallel.json by default) with per-machine calibration:
# raw wall times are normalized by the run's median baseline ratio, so a
# slower CI machine passes while a single regressing benchmark fails. Exit
# code 0 means no entry regressed; 1 means the gate tripped.
#
# -selftest proves the gate is live: it injects a 25x slowdown into one
# heavyweight entry and requires the comparison to FAIL. CI runs the
# selftest before the real comparison — a gate that cannot trip is not a
# gate.
set -eu

SELFTEST=0
if [ "${1:-}" = "-selftest" ]; then
  SELFTEST=1
  shift
fi
BASELINE="${1:-BENCH_parallel.json}"
TOLERANCE="${2:-2.0}"
WORKERS="${BENCH_COMPARE_WORKERS:-8}"

[ -f "$BASELINE" ] || { echo "bench-compare: baseline $BASELINE not found" >&2; exit 2; }

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "bench-compare: building rabench"
go build -o "$WORKDIR/rabench" ./cmd/rabench

if [ "$SELFTEST" -eq 1 ]; then
  echo "bench-compare: selftest — injecting a 25x slowdown into peterson-ra"
  STATUS=0
  "$WORKDIR/rabench" -j "$WORKERS" -compare "$BASELINE" -tolerance "$TOLERANCE" \
    -inject-slowdown peterson-ra=25 parallel >"$WORKDIR/selftest.out" 2>&1 || STATUS=$?
  cat "$WORKDIR/selftest.out"
  if [ "$STATUS" -eq 0 ]; then
    echo "bench-compare: SELFTEST FAIL — injected slowdown did not trip the gate" >&2
    exit 1
  fi
  if ! grep -q "regression: peterson-ra" "$WORKDIR/selftest.out"; then
    echo "bench-compare: SELFTEST FAIL — gate tripped without naming the injected entry" >&2
    exit 1
  fi
  echo "bench-compare: selftest PASS (gate trips on a real slowdown)"
  exit 0
fi

echo "bench-compare: comparing against $BASELINE (tolerance ${TOLERANCE}x, -j $WORKERS)"
"$WORKDIR/rabench" -j "$WORKERS" -compare "$BASELINE" -tolerance "$TOLERANCE" parallel
echo "bench-compare: PASS"
