#!/usr/bin/env sh
# bench-allocs.sh — the allocation budget gate.
#
# Usage: scripts/bench-allocs.sh [budget]
#
# Runs the heaviest parallel-engine benchmark with -benchmem and fails when
# allocs/op exceeds the budget. Unlike wall time, allocation counts are
# nearly machine-independent (they vary only slightly with worker
# scheduling), so this gate needs no calibration: it directly catches a
# change that reintroduces per-successor heap traffic the exploration-core
# overhaul removed (see DESIGN "State representation"). The default budget
# is ~1.5x the measured steady state (~0.78M allocs/op) and ~1/4 of the
# pre-overhaul cost (5.17M allocs/op).
set -eu

BUDGET="${1:-1200000}"
BENCH="BenchmarkVerifyParallel/peterson/j=8"

echo "bench-allocs: running $BENCH (budget $BUDGET allocs/op)"
OUT="$(go test -run '^$' -bench "$BENCH" -benchtime 2x -benchmem .)"
printf '%s\n' "$OUT"

ALLOCS="$(printf '%s\n' "$OUT" | awk '/^BenchmarkVerifyParallel/ {
  for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}' | head -n 1)"
if [ -z "$ALLOCS" ]; then
  echo "bench-allocs: no allocs/op figure in benchmark output" >&2
  exit 2
fi
if [ "$ALLOCS" -gt "$BUDGET" ]; then
  echo "bench-allocs: FAIL — $ALLOCS allocs/op exceeds budget $BUDGET" >&2
  exit 1
fi
echo "bench-allocs: PASS — $ALLOCS allocs/op within budget $BUDGET"
