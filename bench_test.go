// Benchmarks regenerating the paper's tables and figures; one benchmark per
// experiment in the EXPERIMENTS.md index. Run with
//
//	go test -bench=. -benchmem
package paramra_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paramra"
	"paramra/internal/bench"
	"paramra/internal/cm"
	"paramra/internal/datalog"
	"paramra/internal/depgraph"
	"paramra/internal/encode"
	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/sc"
	"paramra/internal/simplified"
	"paramra/internal/tqbf"
)

func mustSys(b *testing.B, src string) *lang.System {
	b.Helper()
	sys, err := lang.ParseSystem(src)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func verifyB(b *testing.B, sys *lang.System, wantUnsafe bool) simplified.Result {
	b.Helper()
	v, err := simplified.New(sys, simplified.Options{})
	if err != nil {
		b.Fatal(err)
	}
	res := v.Verify()
	if res.Unsafe != wantUnsafe {
		b.Fatalf("verdict %v, want %v", res.Unsafe, wantUnsafe)
	}
	return res
}

// fig3Src builds the Figure 3 producer-consumer with consumer loop bound z.
func fig3Src(z int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
system fig3 { vars x y; domain %d; env producer; dis consumer }
thread producer { regs r s; r = load y; assume r == 1; s = load x; store x (s + 1) }
thread consumer {
  regs t
  store y 1
`, z+2)
	for i := 1; i <= z; i++ {
		fmt.Fprintf(&sb, "  t = load x; assume t == %d\n", i)
	}
	sb.WriteString("  assert false\n}\n")
	return sb.String()
}

// BenchmarkTable1PSPACECell measures the PSPACE cell of Table 1: deciding a
// TQBF reduction of quantifier depth 3 with the parameterized verifier.
func BenchmarkTable1PSPACECell(b *testing.B) {
	q := tqbf.Random(rand.New(rand.NewSource(1)), 1, 2)
	sys, err := tqbf.Reduce(q)
	if err != nil {
		b.Fatal(err)
	}
	want := q.Eval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verifyB(b, sys, want)
	}
}

// BenchmarkTable1UndecidableCell measures the bounded counter-machine
// fallback for the env(acyc)-with-CAS cell of Table 1 (Theorem 1.1).
func BenchmarkTable1UndecidableCell(b *testing.B) {
	m := &cm.Machine{States: []cm.Instr{
		{Kind: cm.OpInc, Counter: 0, Next: 1},
		{Kind: cm.OpInc, Counter: 0, Next: 2},
		{Kind: cm.OpHalt},
	}}
	sys, err := cm.Reduce(m, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := ra.NewInstance(sys, 3)
		if err != nil {
			b.Fatal(err)
		}
		if res := inst.Explore(ra.Limits{MaxStates: 2_000_000}); !res.Unsafe {
			b.Fatal("halting machine not detected")
		}
	}
}

// BenchmarkFig1ConcreteRA measures concrete RA exploration of the Figure 1
// producer-consumer instance (one producer, one consumer).
func BenchmarkFig1ConcreteRA(b *testing.B) {
	sys := mustSys(b, fig3Src(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := ra.NewInstance(sys, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res := inst.Explore(ra.Limits{MaxStates: 200_000}); !res.Unsafe {
			b.Fatal("expected unsafe")
		}
	}
}

// BenchmarkFig3Simplified measures the Figure 3 parameterized verification
// with loop bound 4 (the consumer loops more often than any fixed thread
// count would allow without the abstraction).
func BenchmarkFig3Simplified(b *testing.B) {
	sys := mustSys(b, fig3Src(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verifyB(b, sys, true)
	}
}

// BenchmarkFig4DependencyGraph measures goal-directed verification plus
// dependency-graph reconstruction for the Figure 4 snippet.
func BenchmarkFig4DependencyGraph(b *testing.B) {
	sys := mustSys(b, `
system fig4 { vars x y; domain 3; env worker }
thread worker {
  regs r
  choice { store x 1 } or { r = load x; assume r == 1; store y 2 }
}
`)
	yv, _ := sys.VarByName("y")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := simplified.New(sys, simplified.Options{Goal: &simplified.Goal{Var: yv, Val: 2}})
		if err != nil {
			b.Fatal(err)
		}
		res := v.Verify()
		if !res.Unsafe {
			b.Fatal("goal not generated")
		}
		if _, err := depgraph.FromViolation(sys, res.Violation); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Cost measures the Figure 5 cost computation (z = 4).
func BenchmarkFig5Cost(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5(4)
		if err != nil {
			b.Fatal(err)
		}
		if rows[3].CostBound != 4 {
			b.Fatalf("cost = %d", rows[3].CostBound)
		}
	}
}

// BenchmarkFig6TQBF measures the Theorem 5.1 pipeline: build the Figure 6
// reduction and verify, for a ∀∃∀ formula.
func BenchmarkFig6TQBF(b *testing.B) {
	q, err := tqbf.Parse("forall u0 exists e1 forall u1 : (~u0 | e1) & (u0 | ~e1)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := tqbf.Reduce(q)
		if err != nil {
			b.Fatal(err)
		}
		verifyB(b, sys, true)
	}
}

// BenchmarkTheorem34Differential measures one round of the soundness/
// completeness cross-check: parameterized verdict vs concrete instances.
func BenchmarkTheorem34Differential(b *testing.B) {
	e, _ := bench.ByName("prodcons-fig1")
	sys := e.System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verifyB(b, sys, true)
		inst, err := ra.NewInstance(sys, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res := inst.Explore(ra.Limits{MaxStates: 200_000}); !res.Unsafe {
			b.Fatal("concrete disagrees")
		}
	}
}

// BenchmarkLemma42Translation measures the Cache→linear Datalog
// translation plus evaluation of the result.
func BenchmarkLemma42Translation(b *testing.B) {
	p := datalog.NewProgram()
	s := p.MustPred("s", 1)
	for i := 0; i <= 5; i++ {
		p.Intern(fmt.Sprintf("c%d", i))
	}
	if err := p.Fact(s, p.Intern("c0")); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.MustRule(datalog.Rule{
			Head: datalog.Atom{Pred: s, Terms: []datalog.Term{datalog.C(p.Intern(fmt.Sprintf("c%d", i+1)))}},
			Body: []datalog.Atom{{Pred: s, Terms: []datalog.Term{datalog.C(p.Intern(fmt.Sprintf("c%d", i)))}}},
		})
	}
	goal := datalog.GroundAtom{Pred: s, Args: []datalog.Const{p.Intern("c5")}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp, lg, err := datalog.TranslateCache(p, goal, 2)
		if err != nil {
			b.Fatal(err)
		}
		if !datalog.Query(lp, lg) {
			b.Fatal("translation lost derivability")
		}
	}
}

// BenchmarkLemma44CacheSize measures the minimal-cache search on a makeP
// instance.
func BenchmarkLemma44CacheSize(b *testing.B) {
	sys := mustSys(b, `
system s { vars x f; domain 2; env w }
thread w { regs r; r = load x; assume r == 0; store f 1 }
`)
	p, err := encode.EnvOnly(sys)
	if err != nil {
		b.Fatal(err)
	}
	core, edb := datalog.SplitEDB(p.Prog, p.EDBPreds)
	db := datalog.EvalSemiNaive(p.Prog)
	var goal datalog.GroundAtom
	found := false
	for _, g := range db.All() {
		if p.Prog.Preds[g.Pred].Name == "emp" {
			goal, found = g, true
			break
		}
	}
	if !found {
		b.Fatal("no emp atom")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := datalog.MinCacheSizeEDB(core, goal, 16, edb); k <= 0 {
			b.Fatalf("min cache = %d", k)
		}
	}
}

// BenchmarkSec43ThreadBound measures the §4.3 pipeline: cost bound from the
// dependency graph plus concrete minimal-thread search.
func BenchmarkSec43ThreadBound(b *testing.B) {
	e, _ := bench.ByName("env-chain-escalation")
	sys := e.System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := verifyB(b, sys, true)
		g, err := depgraph.FromViolation(sys, res.Violation)
		if err != nil {
			b.Fatal(err)
		}
		if g.CostGoal() < 4 {
			b.Fatalf("cost = %d", g.CostGoal())
		}
		n, err := bench.MinEnvConcrete(sys, 5, 500_000)
		if err != nil || n != 4 {
			b.Fatalf("min env = %d (%v)", n, err)
		}
	}
}

// BenchmarkCorpusVerify measures parameterized verification across the full
// benchmark corpus (E11), with one sub-benchmark per entry.
func BenchmarkCorpusVerify(b *testing.B) {
	for _, e := range bench.Corpus() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			sys := e.System()
			want := e.Want == bench.Unsafe
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				verifyB(b, sys, want)
			}
		})
	}
}

// BenchmarkAblationNoAbstraction compares against the no-abstraction
// baseline: concrete exploration with a fixed thread count.
func BenchmarkAblationNoAbstraction(b *testing.B) {
	e, _ := bench.ByName("env-chain-escalation")
	sys := e.System()
	b.Run("simplified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verifyB(b, sys, true)
		}
	})
	b.Run("concrete-n4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, err := ra.NewInstance(sys, 4)
			if err != nil {
				b.Fatal(err)
			}
			if res := inst.Explore(ra.Limits{MaxStates: 2_000_000}); !res.Unsafe {
				b.Fatal("expected unsafe")
			}
		}
	})
}

// BenchmarkAblationDatalogVsFixpoint compares the two decision backends.
func BenchmarkAblationDatalogVsFixpoint(b *testing.B) {
	e, _ := bench.ByName("prodcons-fig1")
	sys := e.System()
	b.Run("fixpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verifyB(b, sys, true)
		}
	})
	b.Run("datalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps, _, err := encode.All(sys, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			if !encode.Unsafe(ps) {
				b.Fatal("datalog backend disagrees")
			}
		}
	})
}

// BenchmarkRobustness measures one SC-vs-RA robustness comparison (E13).
func BenchmarkRobustness(b *testing.B) {
	e, _ := bench.ByName("sb-litmus")
	sys := e.System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rob, err := sc.CompareRobustness(sys, 0, ra.Limits{MaxStates: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if !rob.WeakBehaviour() {
			b.Fatal("SB should be non-robust")
		}
	}
}

// BenchmarkScalingDomain measures one point of the E14 domain sweep.
func BenchmarkScalingDomain(b *testing.B) {
	sys := mustSys(b, `
system chain { vars x; domain 16; env inc; dis w }
thread inc { regs r; r = load x; store x (r + 1) }
thread w { regs s; s = load x; assume s == 15; assert false }
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verifyB(b, sys, true)
	}
}

// BenchmarkExploreParallel compares the sequential and parallel concrete
// explorers on a safe instance (full state-space exhaustion).
func BenchmarkExploreParallel(b *testing.B) {
	sys := mustSys(b, `
system s { vars x y a; domain 3; dis t1; dis t2 }
thread t1 { regs r; store x 1; r = load y; store a (r + 1) }
thread t2 { regs q; store y 1; q = load x; store a q }
`)
	inst, err := ra.NewInstance(sys, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := inst.Explore(ra.Limits{}); !res.Complete {
				b.Fatal("incomplete")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := inst.ExploreParallel(ra.Limits{}, 0); !res.Complete {
				b.Fatal("incomplete")
			}
		}
	})
}

// BenchmarkParser measures the concrete-syntax frontend.
func BenchmarkParser(b *testing.B) {
	src := fig3Src(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paramra.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatalogTransitiveClosure measures the raw semi-naive engine.
func BenchmarkDatalogTransitiveClosure(b *testing.B) {
	p := datalog.NewProgram()
	edge := p.MustPred("edge", 2)
	path := p.MustPred("path", 2)
	const n = 60
	for i := 0; i < n; i++ {
		p.Intern(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n-1; i++ {
		if err := p.Fact(edge, datalog.Const(i), datalog.Const(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	p.MustRule(datalog.Rule{
		Head:    datalog.Atom{Pred: path, Terms: []datalog.Term{datalog.V(0), datalog.V(1)}},
		Body:    []datalog.Atom{{Pred: edge, Terms: []datalog.Term{datalog.V(0), datalog.V(1)}}},
		NumVars: 2,
	})
	p.MustRule(datalog.Rule{
		Head: datalog.Atom{Pred: path, Terms: []datalog.Term{datalog.V(0), datalog.V(2)}},
		Body: []datalog.Atom{
			{Pred: path, Terms: []datalog.Term{datalog.V(0), datalog.V(1)}},
			{Pred: edge, Terms: []datalog.Term{datalog.V(1), datalog.V(2)}},
		},
		NumVars: 3,
	})
	want := n * (n - 1) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := datalog.EvalSemiNaive(p)
		if got := len(db.ByPred(path)); got != want {
			b.Fatalf("paths = %d, want %d", got, want)
		}
	}
}
